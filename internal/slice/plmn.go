package slice

import (
	"fmt"
	"sort"
	"sync"
)

// PLMN is a Public Land Mobile Network identifier (MCC+MNC). The demo maps
// each network slice onto a dedicated PLMN dynamically installed in the
// MOCN-sharing eNBs, because no commercial slicing equipment existed.
type PLMN struct {
	// MCC is the 3-digit mobile country code, e.g. "001" (test range).
	MCC string `json:"mcc"`
	// MNC is the 2-digit mobile network code.
	MNC string `json:"mnc"`
}

// String renders the PLMN as MCC-MNC, e.g. "001-01".
func (p PLMN) String() string { return p.MCC + "-" + p.MNC }

// IsZero reports whether the PLMN is unset.
func (p PLMN) IsZero() bool { return p.MCC == "" && p.MNC == "" }

// PLMNAllocator hands out dedicated PLMN IDs from the test MCC range and
// recycles those of terminated slices. An eNB can only broadcast a bounded
// number of PLMNs under MOCN (six per 3GPP TS 36.331 SIB1), so exhaustion is
// a real admission-rejection cause the orchestrator must surface.
type PLMNAllocator struct {
	mu    sync.Mutex
	mcc   string
	limit int
	inUse map[PLMN]ID
	free  []PLMN
	next  int
}

// DefaultPLMNLimit matches the SIB1 limit of 6 PLMN identities per cell
// broadcast; the demo's two eNBs broadcast a shared MOCN list.
const DefaultPLMNLimit = 6

// NewPLMNAllocator returns an allocator over mcc with at most limit
// simultaneously assigned PLMNs. limit <= 0 selects DefaultPLMNLimit.
func NewPLMNAllocator(mcc string, limit int) *PLMNAllocator {
	if mcc == "" {
		mcc = "001"
	}
	if limit <= 0 {
		limit = DefaultPLMNLimit
	}
	return &PLMNAllocator{
		mcc:   mcc,
		limit: limit,
		inUse: make(map[PLMN]ID),
	}
}

// ErrPLMNExhausted is returned when all broadcastable PLMN slots are taken.
var ErrPLMNExhausted = fmt.Errorf("slice: PLMN broadcast list full (MOCN limit)")

// Allocate assigns a free PLMN to the slice.
func (a *PLMNAllocator) Allocate(owner ID) (PLMN, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.inUse) >= a.limit {
		return PLMN{}, fmt.Errorf("%w: %d in use", ErrPLMNExhausted, len(a.inUse))
	}
	var p PLMN
	if n := len(a.free); n > 0 {
		p = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		a.next++
		p = PLMN{MCC: a.mcc, MNC: fmt.Sprintf("%02d", a.next)}
	}
	a.inUse[p] = owner
	return p, nil
}

// Release returns the slice's PLMN to the pool. Releasing an unknown PLMN is
// a no-op so teardown paths stay idempotent.
func (a *PLMNAllocator) Release(p PLMN) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.inUse[p]; !ok {
		return
	}
	delete(a.inUse, p)
	a.free = append(a.free, p)
}

// Owner reports which slice currently holds the PLMN.
func (a *PLMNAllocator) Owner(p PLMN) (ID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.inUse[p]
	return id, ok
}

// InUse returns the currently broadcast PLMNs in deterministic order —
// exactly the MOCN list the eNBs would advertise in SIB1.
func (a *PLMNAllocator) InUse() []PLMN {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PLMN, 0, len(a.inUse))
	for p := range a.inUse {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MCC != out[j].MCC {
			return out[i].MCC < out[j].MCC
		}
		return out[i].MNC < out[j].MNC
	})
	return out
}

// Available reports how many more PLMNs can be assigned.
func (a *PLMNAllocator) Available() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit - len(a.inUse)
}
