// Package slice defines the network-slice data model shared by every layer
// of the orchestrator: the tenant-facing request (duration, maximum latency,
// expected throughput, price, SLA-violation penalty — exactly the dashboard
// knobs listed in Section 3 of the paper), the slice lifecycle state machine,
// the PLMN allocator that maps slices onto dedicated PLMN IDs (the trick the
// demo uses in place of commercial slicing equipment), and revenue/penalty
// accounting.
package slice

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ID uniquely identifies a slice within one orchestrator.
type ID string

// ServiceClass coarsely describes the vertical the slice serves. It drives
// the default traffic shape and the latitude the overbooking engine has.
type ServiceClass int

// Service classes named after the verticals in the paper's introduction.
const (
	// ClassEMBB is throughput-oriented mobile broadband.
	ClassEMBB ServiceClass = iota
	// ClassAutomotive is a latency-critical (URLLC-like) vertical slice.
	ClassAutomotive
	// ClassEHealth is an e-health vertical: moderate throughput, strict
	// reliability, diurnal demand.
	ClassEHealth
	// ClassMMTC is massive machine-type: many devices, low per-device rate.
	ClassMMTC
)

var classNames = map[ServiceClass]string{
	ClassEMBB:       "eMBB",
	ClassAutomotive: "automotive",
	ClassEHealth:    "e-health",
	ClassMMTC:       "mMTC",
}

// String returns the class name.
func (c ServiceClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ServiceClass(%d)", int(c))
}

// SLA is the service-level agreement of one slice: the request fields the
// demo dashboard exposes plus the service class.
type SLA struct {
	// ThroughputMbps is the expected (peak) downlink throughput the tenant
	// contracts for. Peak provisioning reserves exactly this much; the
	// overbooking engine may reserve less when forecasts allow.
	ThroughputMbps float64
	// MaxLatencyMs is the maximum end-to-end latency allowed, radio
	// excluded: it constrains the transport path plus data-center choice.
	MaxLatencyMs float64
	// Duration is the requested slice lifetime.
	Duration time.Duration
	// PriceEUR is the price the tenant is willing to pay for the whole
	// slice duration.
	PriceEUR float64
	// PenaltyEUR is the penalty the operator owes for each SLA-violation
	// epoch (a monitoring interval in which delivered < demanded and
	// demanded <= contracted throughput).
	PenaltyEUR float64
	// Class selects the vertical profile.
	Class ServiceClass
	// EdgeCompute indicates the tenant requires mobile-edge (not core
	// cloud) compute regardless of the latency budget.
	EdgeCompute bool
}

// Validate reports the first problem with the SLA, or nil. Non-finite
// numbers are rejected outright: a NaN throughput passes every `<= 0` gate
// yet poisons the capacity ledger, so finiteness is checked first.
func (s SLA) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"throughput", s.ThroughputMbps},
		{"max latency", s.MaxLatencyMs},
		{"price", s.PriceEUR},
		{"penalty", s.PenaltyEUR},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("slice: %s %v must be finite", f.name, f.v)
		}
	}
	switch {
	case s.ThroughputMbps <= 0:
		return fmt.Errorf("slice: throughput %.2f Mbps must be positive", s.ThroughputMbps)
	case s.MaxLatencyMs <= 0:
		return fmt.Errorf("slice: max latency %.2f ms must be positive", s.MaxLatencyMs)
	case s.Duration <= 0:
		return fmt.Errorf("slice: duration %v must be positive", s.Duration)
	case s.PriceEUR < 0:
		return fmt.Errorf("slice: price %.2f must be non-negative", s.PriceEUR)
	case s.PenaltyEUR < 0:
		return fmt.Errorf("slice: penalty %.2f must be non-negative", s.PenaltyEUR)
	}
	return nil
}

// Request is a tenant's ask for a slice, as submitted through the dashboard
// or the REST API.
type Request struct {
	// Tenant names the requesting business player (vertical industry).
	Tenant string
	// SLA carries the contractual parameters.
	SLA SLA
	// Arrival is when the request reached the orchestrator.
	Arrival time.Time
}

// Validate reports the first problem with the request, or nil.
func (r Request) Validate() error {
	if r.Tenant == "" {
		return errors.New("slice: request missing tenant")
	}
	return r.SLA.Validate()
}

// State is a stage of the slice lifecycle.
type State int

// Lifecycle states. Transitions are enforced by Slice.transition; see
// validTransitions.
const (
	// StatePending is a submitted request awaiting admission control.
	StatePending State = iota
	// StateRejected means admission control turned the request down.
	StateRejected
	// StateAdmitted means resources were granted but installation across
	// the three domains has not finished.
	StateAdmitted
	// StateInstalling covers PRB reservation, path setup, stack deployment
	// and EPC bring-up.
	StateInstalling
	// StateActive means UEs can attach and traffic flows.
	StateActive
	// StateReconfiguring marks an overbooking-driven resize in progress.
	StateReconfiguring
	// StateTerminated is the terminal state after expiry or deletion.
	StateTerminated
)

var stateNames = map[State]string{
	StatePending:       "pending",
	StateRejected:      "rejected",
	StateAdmitted:      "admitted",
	StateInstalling:    "installing",
	StateActive:        "active",
	StateReconfiguring: "reconfiguring",
	StateTerminated:    "terminated",
}

// String returns the lowercase state name used in the API and dashboard.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

var validTransitions = map[State][]State{
	StatePending:       {StateRejected, StateAdmitted},
	StateAdmitted:      {StateInstalling, StateTerminated},
	StateInstalling:    {StateActive, StateTerminated},
	StateActive:        {StateReconfiguring, StateTerminated},
	StateReconfiguring: {StateActive, StateTerminated},
}

// ErrBadTransition is wrapped by transition errors.
var ErrBadTransition = errors.New("slice: invalid state transition")

// Allocation records what the orchestrator currently reserves for the slice
// in each domain. AllocatedMbps may be below SLA.ThroughputMbps when the
// slice is overbooked.
type Allocation struct {
	// AllocatedMbps is the radio-domain throughput reservation.
	AllocatedMbps float64
	// PRBs is the number of physical resource blocks reserved per eNB.
	PRBs map[string]int
	// PathIDs names the transport reservations (one per eNB-to-DC path).
	PathIDs []string
	// PathLatencyMs is the worst transport latency over the chosen paths.
	PathLatencyMs float64
	// DataCenter is where the slice's EPC stack runs ("edge" or "core" DC name).
	DataCenter string
	// StackID is the Heat-style stack holding the vEPC VMs.
	StackID string
	// EPCID is the deployed vEPC instance.
	EPCID string
	// MECAppID is the edge application placed for the slice when the
	// optional MEC compute domain is registered ("" otherwise).
	MECAppID string
	// PLMN is the dedicated PLMN the slice is broadcast under.
	PLMN PLMN
}

// Clone returns a deep copy (the PRB map is copied).
func (a Allocation) Clone() Allocation {
	b := a
	if a.PRBs != nil {
		b.PRBs = make(map[string]int, len(a.PRBs))
		for k, v := range a.PRBs {
			b.PRBs[k] = v
		}
	}
	b.PathIDs = append([]string(nil), a.PathIDs...)
	return b
}

// Slice is one admitted (or pending/rejected) network slice with its full
// bookkeeping. All methods are safe for concurrent use.
type Slice struct {
	mu sync.Mutex

	id      ID
	req     Request
	state   State
	reason  string          // rejection or termination reason (human-readable)
	cause   *RejectionCause // typed rejection cause (nil unless rejected)
	created time.Time
	starts  time.Time
	expires time.Time

	alloc Allocation

	// Accounting (Section 3: "gains vs. penalties").
	violationEpochs int
	servedEpochs    int
	penaltyEUR      float64
	demandMbps      float64 // last measured demand
	servedMbps      float64 // last delivered throughput
}

// New creates a pending slice for the request. The caller (admission engine)
// assigns the ID.
func New(id ID, req Request) (*Slice, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &Slice{
		id:      id,
		req:     req,
		state:   StatePending,
		created: req.Arrival,
	}, nil
}

// ID returns the slice identifier.
func (s *Slice) ID() ID { return s.id }

// Request returns the originating request.
func (s *Slice) Request() Request { return s.req }

// SLA returns the contract.
func (s *Slice) SLA() SLA { return s.req.SLA }

// Tenant returns the owning tenant.
func (s *Slice) Tenant() string { return s.req.Tenant }

// State returns the current lifecycle state.
func (s *Slice) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Reason returns the rejection/termination reason if any.
func (s *Slice) Reason() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reason
}

// Expiry returns when the slice's contracted duration ends (zero until
// activation).
func (s *Slice) Expiry() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expires
}

// Allocation returns a copy of the current multi-domain allocation.
func (s *Slice) Allocation() Allocation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc.Clone()
}

// SetAllocation replaces the recorded allocation.
func (s *Slice) SetAllocation(a Allocation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alloc = a.Clone()
}

// AllocatedMbps returns the current radio throughput reservation without
// cloning the whole allocation (hot path: lifecycle event publication).
func (s *Slice) AllocatedMbps() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alloc.AllocatedMbps
}

// UpdateAllocatedMbps resizes only the radio throughput reservation record
// (used by the overbooking reconfiguration loop).
func (s *Slice) UpdateAllocatedMbps(mbps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alloc.AllocatedMbps = mbps
}

func (s *Slice) transition(to State, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ok := range validTransitions[s.state] {
		if ok == to {
			s.state = to
			if reason != "" {
				s.reason = reason
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %s -> %s (slice %s)", ErrBadTransition, s.state, to, s.id)
}

// Reject moves Pending -> Rejected with a typed cause: the cause's detail
// becomes the human-readable reason and the code surfaces through
// Cause/Snapshot. A nil cause is recorded as RejectOther.
func (s *Slice) Reject(cause *RejectionCause) error {
	if cause == nil {
		cause = &RejectionCause{Code: RejectOther, Detail: "rejected"}
	}
	if err := s.transition(StateRejected, cause.Detail); err != nil {
		return err
	}
	s.mu.Lock()
	s.cause = cause
	s.mu.Unlock()
	return nil
}

// Cause returns the typed rejection cause, if the slice was rejected.
func (s *Slice) Cause() (RejectionCause, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cause == nil {
		return RejectionCause{}, false
	}
	return *s.cause, true
}

// Admit moves Pending -> Admitted.
func (s *Slice) Admit() error { return s.transition(StateAdmitted, "") }

// BeginInstall moves Admitted -> Installing.
func (s *Slice) BeginInstall() error { return s.transition(StateInstalling, "") }

// Activate moves Installing -> Active and stamps the activity window.
func (s *Slice) Activate(now time.Time) error {
	if err := s.transition(StateActive, ""); err != nil {
		return err
	}
	s.mu.Lock()
	s.starts = now
	s.expires = now.Add(s.req.SLA.Duration)
	s.mu.Unlock()
	return nil
}

// BeginReconfigure moves Active -> Reconfiguring.
func (s *Slice) BeginReconfigure() error { return s.transition(StateReconfiguring, "") }

// EndReconfigure moves Reconfiguring -> Active.
func (s *Slice) EndReconfigure() error { return s.transition(StateActive, "") }

// Terminate moves any live state to Terminated.
func (s *Slice) Terminate(reason string) error { return s.transition(StateTerminated, reason) }

// RecordEpoch accounts one monitoring epoch: the measured demand and the
// throughput actually delivered. A violation is charged when the slice
// demanded no more than its contract yet received measurably less than it
// demanded — i.e. the operator squeezed an overbooked slice too hard.
// It reports whether the epoch was a violation.
func (s *Slice) RecordEpoch(demandMbps, servedMbps float64) bool {
	const tolerance = 1e-6
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servedEpochs++
	s.demandMbps = demandMbps
	s.servedMbps = servedMbps
	contract := s.req.SLA.ThroughputMbps
	entitled := demandMbps
	if entitled > contract {
		entitled = contract
	}
	if servedMbps+tolerance < entitled {
		s.violationEpochs++
		s.penaltyEUR += s.req.SLA.PenaltyEUR
		return true
	}
	return false
}

// Accounting summarises the money side of the slice.
type Accounting struct {
	PriceEUR        float64
	PenaltyEUR      float64
	NetEUR          float64
	ServedEpochs    int
	ViolationEpochs int
	ViolationRate   float64
	DemandMbps      float64
	ServedMbps      float64
}

// Accounting returns the current revenue/penalty tally. Price counts only
// for slices that got past admission.
func (s *Slice) Accounting() Accounting {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := Accounting{
		PenaltyEUR:      s.penaltyEUR,
		ServedEpochs:    s.servedEpochs,
		ViolationEpochs: s.violationEpochs,
		DemandMbps:      s.demandMbps,
		ServedMbps:      s.servedMbps,
	}
	if s.state != StatePending && s.state != StateRejected {
		a.PriceEUR = s.req.SLA.PriceEUR
	}
	a.NetEUR = a.PriceEUR - a.PenaltyEUR
	if s.servedEpochs > 0 {
		a.ViolationRate = float64(s.violationEpochs) / float64(s.servedEpochs)
	}
	return a
}

// Persisted is the complete durable image of a slice — every private
// field the lifecycle and accounting machinery maintains — used by the
// write-ahead-log checkpoint. Unlike Snapshot (a lossy API view), a
// Persisted round-trips: Rehydrate reconstructs a Slice that behaves
// identically to the original.
type Persisted struct {
	ID              ID              `json:"id"`
	Request         Request         `json:"request"`
	State           State           `json:"state"`
	Reason          string          `json:"reason,omitempty"`
	Cause           *RejectionCause `json:"cause,omitempty"`
	Created         time.Time       `json:"created"`
	Starts          time.Time       `json:"starts,omitempty"`
	Expires         time.Time       `json:"expires,omitempty"`
	Allocation      Allocation      `json:"allocation"`
	ViolationEpochs int             `json:"violation_epochs,omitempty"`
	ServedEpochs    int             `json:"served_epochs,omitempty"`
	PenaltyEUR      float64         `json:"penalty_eur,omitempty"`
	DemandMbps      float64         `json:"demand_mbps,omitempty"`
	ServedMbps      float64         `json:"served_mbps,omitempty"`
}

// Persist captures the slice's full durable image atomically.
func (s *Slice) Persist() Persisted {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Persisted{
		ID:              s.id,
		Request:         s.req,
		State:           s.state,
		Reason:          s.reason,
		Created:         s.created,
		Starts:          s.starts,
		Expires:         s.expires,
		Allocation:      s.alloc.Clone(),
		ViolationEpochs: s.violationEpochs,
		ServedEpochs:    s.servedEpochs,
		PenaltyEUR:      s.penaltyEUR,
		DemandMbps:      s.demandMbps,
		ServedMbps:      s.servedMbps,
	}
	if s.cause != nil {
		c := *s.cause
		p.Cause = &c
	}
	return p
}

// Rehydrate reconstructs a slice from its durable image, bypassing the
// transition machinery — recovery restores the recorded state directly.
func Rehydrate(p Persisted) *Slice {
	s := &Slice{
		id:              p.ID,
		req:             p.Request,
		state:           p.State,
		reason:          p.Reason,
		created:         p.Created,
		starts:          p.Starts,
		expires:         p.Expires,
		alloc:           p.Allocation.Clone(),
		violationEpochs: p.ViolationEpochs,
		servedEpochs:    p.ServedEpochs,
		penaltyEUR:      p.PenaltyEUR,
		demandMbps:      p.DemandMbps,
		servedMbps:      p.ServedMbps,
	}
	if p.Cause != nil {
		c := *p.Cause
		s.cause = &c
	}
	return s
}

// Snapshot is an immutable view of a slice for APIs and the dashboard.
type Snapshot struct {
	ID     ID     `json:"id"`
	Tenant string `json:"tenant"`
	Class  string `json:"class"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	// RejectCode is the stable typed rejection cause ("" unless rejected).
	RejectCode RejectCode `json:"reject_code,omitempty"`
	SLA        SLA        `json:"sla"`
	Allocation Allocation `json:"allocation"`
	Accounting Accounting `json:"accounting"`
	Expires    time.Time  `json:"expires"`
}

// Snapshot captures the slice state atomically.
func (s *Slice) Snapshot() Snapshot {
	acct := s.Accounting()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		ID:         s.id,
		Tenant:     s.req.Tenant,
		Class:      s.req.SLA.Class.String(),
		State:      s.state.String(),
		Reason:     s.reason,
		SLA:        s.req.SLA,
		Allocation: s.alloc.Clone(),
		Accounting: acct,
		Expires:    s.expires,
	}
	if s.cause != nil {
		snap.RejectCode = s.cause.Code
	}
	return snap
}
