package intent

// Unit tests for the template store: the draft→published lifecycle,
// guardrail evaluation at publish time (registration order, first failure
// aborts), version allocation, and published immutability.

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func goldTemplate() Template {
	return Template{
		Name:           "gold",
		ThroughputMbps: 40,
		MaxLatencyMs:   50,
		Duration:       6 * time.Hour,
		PriceEUR:       200,
		PenaltyEUR:     2,
	}
}

func TestStoreLifecycle(t *testing.T) {
	st := NewStore(DefaultGuardrails())
	now := time.Unix(1000, 0)

	d1, err := st.CreateDraft(goldTemplate(), now)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Version != 1 || d1.State != TemplateDraft {
		t.Fatalf("first draft = v%d %s, want v1 draft", d1.Version, d1.State)
	}
	if d1.ProvisionFraction != 1 {
		t.Fatalf("default provision fraction = %v, want 1", d1.ProvisionFraction)
	}

	// Drafts are mutable.
	d1.PriceEUR = 250
	if _, err := st.UpdateDraft(d1); err != nil {
		t.Fatalf("update draft: %v", err)
	}

	pub, err := st.Publish("gold", 1, now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if pub.State != TemplatePublished || pub.PublishedAt.IsZero() {
		t.Fatalf("published = %+v", pub)
	}
	if pub.PriceEUR != 250 {
		t.Fatalf("publish lost the draft update: price %v", pub.PriceEUR)
	}

	// Publish is idempotent; published versions are immutable.
	if _, err := st.Publish("gold", 1, now.Add(2*time.Minute)); err != nil {
		t.Fatalf("re-publish: %v", err)
	}
	pub.PriceEUR = 1
	if _, err := st.UpdateDraft(pub); err == nil {
		t.Fatal("update of a published version succeeded")
	}

	// A second draft gets the next version; LatestPublished ignores it.
	d2, err := st.CreateDraft(goldTemplate(), now.Add(3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Version != 2 {
		t.Fatalf("second draft version = %d, want 2", d2.Version)
	}
	if lp, ok := st.LatestPublished("gold"); !ok || lp.Version != 1 {
		t.Fatalf("latest published = v%d (%v), want v1", lp.Version, ok)
	}
	if _, err := st.Publish("gold", 2, now.Add(4*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if lp, _ := st.LatestPublished("gold"); lp.Version != 2 {
		t.Fatalf("latest published = v%d, want 2", lp.Version)
	}
	if got := st.List(); len(got) != 2 {
		t.Fatalf("list returned %d templates, want 2", len(got))
	}
}

func TestGuardrailsEvaluatedInOrderFirstFailureAborts(t *testing.T) {
	var fired []string
	mark := func(name string, fail bool) Guardrail {
		return Guardrail{Name: name, Check: func(Template) error {
			fired = append(fired, name)
			if fail {
				return errors.New("boom")
			}
			return nil
		}}
	}
	st := NewStore([]Guardrail{mark("first", false), mark("second", true), mark("third", false)})
	now := time.Unix(1000, 0)
	if _, err := st.CreateDraft(goldTemplate(), now); err != nil {
		t.Fatal(err)
	}
	_, err := st.Publish("gold", 1, now)
	if err == nil {
		t.Fatal("publish passed a failing guardrail")
	}
	if !strings.Contains(err.Error(), "second") {
		t.Errorf("error %q does not name the failing guardrail", err)
	}
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Errorf("guardrails fired %v, want [first second] (registration order, abort on failure)", fired)
	}
	// The failed publish leaves the version a draft.
	if got, _ := st.Get("gold", 1); got.State != TemplateDraft {
		t.Errorf("failed publish left state %s, want draft", got.State)
	}
}

func TestDefaultGuardrails(t *testing.T) {
	st := NewStore(DefaultGuardrails())
	now := time.Unix(1000, 0)
	cases := []struct {
		name   string
		mutate func(*Template)
		reject bool
	}{
		{"valid", func(*Template) {}, false},
		{"throughput-over-sla-bound", func(tp *Template) { tp.ThroughputMbps = 5000 }, true},
		{"latency-under-floor", func(tp *Template) { tp.MaxLatencyMs = 0.1 }, true},
		{"duration-over-cap", func(tp *Template) { tp.Duration = 60 * 24 * time.Hour }, true},
		{"provision-under-floor", func(tp *Template) { tp.ProvisionFraction = 0.01 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tpl := goldTemplate()
			tpl.Name = "g-" + tc.name
			tc.mutate(&tpl)
			if _, err := st.CreateDraft(tpl, now); err != nil {
				t.Fatalf("draft: %v", err)
			}
			_, err := st.Publish(tpl.Name, 1, now)
			if tc.reject && err == nil {
				t.Error("publish passed, want guardrail rejection")
			}
			if !tc.reject && err != nil {
				t.Errorf("publish rejected: %v", err)
			}
		})
	}
}

func TestTemplateValidateAndRequest(t *testing.T) {
	if err := (Template{}).Validate(); err == nil {
		t.Error("empty template validated")
	}
	tpl := goldTemplate()
	tpl.ProvisionFraction = 0.5
	if got := tpl.TargetMbps(); got != 20 {
		t.Errorf("TargetMbps = %v, want 20 (fraction applied)", got)
	}
	req := tpl.Request("acme", RegionEdge)
	if req.Tenant != "acme" || !req.SLA.EdgeCompute {
		t.Errorf("edge request = %+v, want tenant acme with EdgeCompute", req)
	}
	if req.SLA.ThroughputMbps != tpl.ThroughputMbps {
		t.Errorf("request contracts %v Mbps, want the full template throughput %v (the fraction is a provisioning cap, not the SLA)",
			req.SLA.ThroughputMbps, tpl.ThroughputMbps)
	}
	if core := tpl.Request("acme", RegionCore); core.SLA.EdgeCompute {
		t.Error("core request asked for edge compute")
	}
	if _, err := ParseRegion("edge"); err != nil {
		t.Error(err)
	}
	if _, err := ParseRegion("moon"); err == nil {
		t.Error("ParseRegion accepted an unknown region")
	}
}
