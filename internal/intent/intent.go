// Package intent is the declarative slice-intent plane (DESIGN.md §13,
// ROADMAP item 4): tenants stop submitting one-shot slice requests and
// instead declare a slice *class* — a versioned Template — that the
// operator publishes, dry-runs against live capacity, instantiates as a
// fleet across tenants × regions, and reconfigures with canary rollouts
// that automatically roll back on SLA regression.
//
// The lifecycle follows the package-orchestration model of kpt (cited in
// ROADMAP): a template version is born Draft (mutable, not instantiable),
// and Publish promotes it to Published (immutable, instantiable) only after
// every guardrail passes. Guardrails run in registration order and the
// first failure aborts the publish — the evaluation order is part of the
// API contract so operators can reason about which error surfaces first.
//
// Nothing in this package owns resources: templates and fleets are control
// metadata, and every resource decision is delegated to the core
// orchestrator (DryRun, SubmitBatch, SetProvisionCap), so the invariant
// auditor's books never gain a second writer.
package intent

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/slice"
)

// TemplateState is the template lifecycle: Draft → Published.
type TemplateState string

// The template lifecycle states.
const (
	// TemplateDraft: mutable, guardrails not yet enforced, cannot be
	// instantiated or rolled out to.
	TemplateDraft TemplateState = "draft"
	// TemplatePublished: guardrails passed, immutable, instantiable.
	TemplatePublished TemplateState = "published"
)

// Region names a placement region of the single-cluster testbed: the core
// data center or the latency-critical edge. (The federated tier maps
// regions onto member clusters instead; the intent plane only forwards the
// name.)
type Region string

// The placement regions.
const (
	RegionCore Region = "core"
	RegionEdge Region = "edge"
)

// ParseRegion validates a region name.
func ParseRegion(s string) (Region, error) {
	switch Region(strings.ToLower(s)) {
	case RegionCore:
		return RegionCore, nil
	case RegionEdge:
		return RegionEdge, nil
	default:
		return "", fmt.Errorf("intent: unknown region %q (want core or edge)", s)
	}
}

// Template is one versioned slice class: the SLA contract every instance
// carries plus the provisioning posture (ProvisionFraction) that rollouts
// change between versions. Versions of a name are immutable once published;
// a change is a new version.
type Template struct {
	Name    string        `json:"name"`
	Version int           `json:"version"`
	State   TemplateState `json:"state"`

	// The SLA contract stamped on every instance.
	ThroughputMbps float64            `json:"throughput_mbps"`
	MaxLatencyMs   float64            `json:"max_latency_ms"`
	Duration       time.Duration      `json:"duration"`
	PriceEUR       float64            `json:"price_eur"`
	PenaltyEUR     float64            `json:"penalty_eur"`
	Class          slice.ServiceClass `json:"class"`

	// ProvisionFraction caps each instance's epoch provisioning target at
	// this fraction of the contracted throughput ((0,1]; default 1 = let
	// the forecast decide alone). Lower fractions overbook harder — the
	// knob canary rollouts turn, and the one that triggers SLA-regression
	// rollback when turned too far.
	ProvisionFraction float64 `json:"provision_fraction"`

	CreatedAt   time.Time `json:"created_at"`
	PublishedAt time.Time `json:"published_at,omitzero"`
}

// withDefaults fills the optional knobs.
func (t Template) withDefaults() Template {
	if t.ProvisionFraction <= 0 || t.ProvisionFraction > 1 {
		t.ProvisionFraction = 1
	}
	return t
}

// Validate checks the structural shape a draft must already have (the
// guardrails add the policy checks at publish time).
func (t Template) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("intent: template name required")
	}
	if strings.ContainsAny(t.Name, "/ \t\n") {
		return fmt.Errorf("intent: template name %q must not contain slashes or spaces", t.Name)
	}
	if t.ThroughputMbps <= 0 {
		return fmt.Errorf("intent: template %s: throughput must be positive", t.Name)
	}
	if t.MaxLatencyMs <= 0 {
		return fmt.Errorf("intent: template %s: max latency must be positive", t.Name)
	}
	if t.Duration <= 0 {
		return fmt.Errorf("intent: template %s: duration must be positive", t.Name)
	}
	if t.PriceEUR < 0 || t.PenaltyEUR < 0 {
		return fmt.Errorf("intent: template %s: price and penalty must be non-negative", t.Name)
	}
	return nil
}

// TargetMbps is the per-instance provisioning cap the template implies.
func (t Template) TargetMbps() float64 {
	return t.ThroughputMbps * t.withDefaults().ProvisionFraction
}

// Request materializes one slice request from the template for a tenant in
// a region.
func (t Template) Request(tenant string, region Region) slice.Request {
	return slice.Request{
		Tenant: tenant,
		SLA: slice.SLA{
			ThroughputMbps: t.ThroughputMbps,
			MaxLatencyMs:   t.MaxLatencyMs,
			Duration:       t.Duration,
			PriceEUR:       t.PriceEUR,
			PenaltyEUR:     t.PenaltyEUR,
			Class:          t.Class,
			EdgeCompute:    region == RegionEdge,
		},
	}
}

// Guardrail is one named publish-time policy check. Guardrails run in
// registration order; the first failure aborts the publish.
type Guardrail struct {
	Name  string
	Check func(t Template) error
}

// SLABounds bounds the contract a template may promise: throughput at most
// maxMbps, latency at least minLatencyMs (the physics floor of the
// testbed), duration at most maxDuration.
func SLABounds(maxMbps, minLatencyMs float64, maxDuration time.Duration) Guardrail {
	return Guardrail{Name: "sla-bounds", Check: func(t Template) error {
		if t.ThroughputMbps > maxMbps {
			return fmt.Errorf("throughput %.1f Mbps exceeds bound %.1f", t.ThroughputMbps, maxMbps)
		}
		if t.MaxLatencyMs < minLatencyMs {
			return fmt.Errorf("latency bound %.1f ms below the %.1f ms floor", t.MaxLatencyMs, minLatencyMs)
		}
		if t.Duration > maxDuration {
			return fmt.Errorf("duration %v exceeds bound %v", t.Duration, maxDuration)
		}
		return nil
	}}
}

// PriceFloor requires the template to pay at least minDensity EUR per
// Mbps·hour — the same revenue-density bar the admission policy can
// enforce, surfaced at publish time instead of per-instance.
func PriceFloor(minDensity float64) Guardrail {
	return Guardrail{Name: "price-floor", Check: func(t Template) error {
		density := t.PriceEUR / (t.ThroughputMbps * t.Duration.Hours())
		if density < minDensity {
			return fmt.Errorf("revenue density %.3f EUR/(Mbps·h) below floor %.3f", density, minDensity)
		}
		return nil
	}}
}

// ProvisionBounds keeps the overbooking posture sane: the provision
// fraction must stay at or above min — a template provisioning (say) 10%
// of its contract is a penalty machine, caught before it ships.
func ProvisionBounds(min float64) Guardrail {
	return Guardrail{Name: "provision-bounds", Check: func(t Template) error {
		if f := t.withDefaults().ProvisionFraction; f < min {
			return fmt.Errorf("provision fraction %.2f below bound %.2f", f, min)
		}
		return nil
	}}
}

// DefaultGuardrails is the stock policy chain, in evaluation order.
func DefaultGuardrails() []Guardrail {
	return []Guardrail{
		SLABounds(1000, 1, 30*24*time.Hour),
		PriceFloor(0),
		ProvisionBounds(0.1),
	}
}

// Store is the versioned template registry. Safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	byName     map[string][]Template // versions of a name; Version = index+1
	names      []string              // insertion order for deterministic listing
	guardrails []Guardrail
}

// NewStore builds a registry enforcing the given guardrails at publish time
// (nil = DefaultGuardrails).
func NewStore(guardrails []Guardrail) *Store {
	if guardrails == nil {
		guardrails = DefaultGuardrails()
	}
	return &Store{byName: make(map[string][]Template), guardrails: guardrails}
}

// Guardrails returns the publish-time policy chain in evaluation order.
func (s *Store) Guardrails() []Guardrail {
	return append([]Guardrail(nil), s.guardrails...)
}

// CreateDraft registers t as the next draft version of its name and returns
// it with Version/State/CreatedAt assigned.
func (s *Store) CreateDraft(t Template, now time.Time) (Template, error) {
	t = t.withDefaults()
	if err := t.Validate(); err != nil {
		return Template{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byName[t.Name]; !ok {
		s.names = append(s.names, t.Name)
	}
	t.Version = len(s.byName[t.Name]) + 1
	t.State = TemplateDraft
	t.CreatedAt = now
	t.PublishedAt = time.Time{}
	s.byName[t.Name] = append(s.byName[t.Name], t)
	return t, nil
}

// UpdateDraft replaces a draft version in place. Published versions are
// immutable.
func (s *Store) UpdateDraft(t Template) (Template, error) {
	t = t.withDefaults()
	if err := t.Validate(); err != nil {
		return Template{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.byName[t.Name]
	if t.Version < 1 || t.Version > len(vs) {
		return Template{}, fmt.Errorf("intent: template %s version %d not found", t.Name, t.Version)
	}
	cur := vs[t.Version-1]
	if cur.State != TemplateDraft {
		return Template{}, fmt.Errorf("intent: template %s v%d is %s and immutable", t.Name, t.Version, cur.State)
	}
	t.State = TemplateDraft
	t.CreatedAt = cur.CreatedAt
	t.PublishedAt = time.Time{}
	vs[t.Version-1] = t
	return t, nil
}

// Publish promotes a draft to Published after running every guardrail in
// registration order; the first failure aborts with the guardrail's name in
// the error. Publishing a published version is a no-op (idempotent).
func (s *Store) Publish(name string, version int, now time.Time) (Template, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.byName[name]
	if version < 1 || version > len(vs) {
		return Template{}, fmt.Errorf("intent: template %s version %d not found", name, version)
	}
	t := vs[version-1]
	if t.State == TemplatePublished {
		return t, nil
	}
	for _, g := range s.guardrails {
		if err := g.Check(t); err != nil {
			return Template{}, fmt.Errorf("intent: guardrail %s: template %s v%d: %w", g.Name, name, version, err)
		}
	}
	t.State = TemplatePublished
	t.PublishedAt = now
	vs[version-1] = t
	return t, nil
}

// Get returns one template version.
func (s *Store) Get(name string, version int) (Template, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.byName[name]
	if version < 1 || version > len(vs) {
		return Template{}, false
	}
	return vs[version-1], true
}

// LatestPublished returns the newest published version of the name.
func (s *Store) LatestPublished(name string) (Template, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.byName[name]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].State == TemplatePublished {
			return vs[i], true
		}
	}
	return Template{}, false
}

// List returns every version of every template, names in lexical order,
// versions ascending — a deterministic catalogue for the API.
func (s *Store) List() []Template {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	var out []Template
	for _, n := range names {
		out = append(out, s.byName[n]...)
	}
	return out
}
