package intent

// Manager-level tests: quota enforcement at instantiation, dry-run against
// drafts, and the canary rollout state machine driven to both verdicts on a
// simulated clock (violations injected directly onto the event bus — C9 in
// internal/scenario drives the same machine from real SLA regressions).

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

func managerEnv(t *testing.T, quotas Quotas) (*Manager, *core.Orchestrator, *sim.Simulator) {
	t.Helper()
	s := sim.NewSimulator(1)
	tb, err := testbed.New(testbed.Default(), s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	orch := core.New(core.Config{Overbook: true, Risk: 0.9}, tb, s, monitor.NewStore(256))
	m := NewManager(orch, s, Config{Quotas: quotas})
	return m, orch, s
}

func publishGold(t *testing.T, m *Manager, fracs ...float64) {
	t.Helper()
	for _, frac := range fracs {
		tpl := goldTemplate()
		tpl.ThroughputMbps = 10
		tpl.ProvisionFraction = frac
		d, err := m.Store().CreateDraft(tpl, time.Unix(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Store().Publish(d.Name, d.Version, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
}

func constDemand(string, Region, Template) traffic.Demand {
	return traffic.NewConstant(5, 0, nil)
}

func TestInstantiateEnforcesQuotas(t *testing.T) {
	m, _, _ := managerEnv(t, Quotas{MaxSlicesPerTenant: 2})
	publishGold(t, m, 1.0)
	// 3 regions... only 2 exist; 1 tenant × 2 regions = 2 per tenant: OK.
	if _, err := m.Instantiate("gold", 1, []string{"acme"}, []Region{RegionCore, RegionEdge}, core.BatchFCFS, constDemand); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	// A second fleet would put acme at 4: quota must reject before any
	// submission happens.
	_, err := m.Instantiate("gold", 1, []string{"acme"}, []Region{RegionCore, RegionEdge}, core.BatchFCFS, constDemand)
	if err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("over per-tenant quota: err = %v, want quota rejection", err)
	}

	m2, _, _ := managerEnv(t, Quotas{MaxSlicesPerRegion: 1})
	publishGold(t, m2, 1.0)
	_, err = m2.Instantiate("gold", 1, []string{"a", "b"}, []Region{RegionCore}, core.BatchFCFS, constDemand)
	if err == nil || !strings.Contains(err.Error(), "quota") {
		t.Fatalf("over per-region quota: err = %v, want quota rejection", err)
	}
}

func TestInstantiateRequiresPublished(t *testing.T) {
	m, _, _ := managerEnv(t, Quotas{})
	if _, err := m.Store().CreateDraft(goldTemplate(), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Instantiate("gold", 1, []string{"acme"}, []Region{RegionCore}, core.BatchFCFS, constDemand); err == nil {
		t.Fatal("instantiated from a draft")
	}
	// Dry-run, by contrast, is allowed against drafts: that is what it is
	// for — probing before publish.
	rep, err := m.DryRun("gold", 1, "acme", RegionCore)
	if err != nil {
		t.Fatalf("dry-run against draft: %v", err)
	}
	if !rep.Feasible {
		t.Fatalf("draft probe infeasible: %+v", rep)
	}
}

func TestRolloutPromotesWhenCanaryQuiet(t *testing.T) {
	m, _, s := managerEnv(t, Quotas{})
	publishGold(t, m, 1.0, 0.8)
	f, err := m.Instantiate("gold", 1, []string{"a", "b", "c", "d"}, []Region{RegionCore}, core.BatchFCFS, constDemand)
	if err != nil {
		t.Fatal(err)
	}
	if f.Admitted == 0 {
		t.Fatalf("no members admitted: %+v", f)
	}

	ro, err := m.StartRollout(RolloutConfig{Fleet: f.ID, ToVersion: 2, CanaryFraction: 0.25, Window: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if ro.Phase != RolloutCanary || len(ro.Canary) == 0 {
		t.Fatalf("rollout start = %+v", ro)
	}

	// A second rollout on the same fleet must be refused while one is in
	// flight, as must a rollout to the fleet's current version.
	if _, err := m.StartRollout(RolloutConfig{Fleet: f.ID, ToVersion: 2}); err == nil {
		t.Error("second in-flight rollout accepted")
	}

	if err := s.RunFor(11 * time.Minute); err != nil {
		t.Fatal(err)
	}
	got, _ := m.GetRollout(ro.ID)
	if got.Phase != RolloutPromoted {
		t.Fatalf("quiet canary: phase = %s (violations=%d), want promoted", got.Phase, got.Violations)
	}
	if fl, _ := m.GetFleet(f.ID); fl.Version != 2 {
		t.Errorf("fleet version = %d, want 2 after promotion", fl.Version)
	}
	if _, err := m.StartRollout(RolloutConfig{Fleet: f.ID, ToVersion: 2}); err == nil {
		t.Error("rollout to the current version accepted")
	}
}

func TestRolloutRollsBackOnCanaryViolations(t *testing.T) {
	m, orch, s := managerEnv(t, Quotas{})
	publishGold(t, m, 1.0, 0.8)
	f, err := m.Instantiate("gold", 1, []string{"a", "b", "c", "d"}, []Region{RegionCore}, core.BatchFCFS, constDemand)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := m.StartRollout(RolloutConfig{Fleet: f.ID, ToVersion: 2, CanaryFraction: 0.5, Window: 10 * time.Minute, MaxViolations: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Inject canary SLA violations onto the bus mid-window (C9 produces
	// them from real starvation; here the decision logic is the subject).
	s.After(5*time.Minute, "inject-violations", func() {
		for i := 0; i < 3; i++ {
			orch.Events().Publish(core.Event{
				Time: s.Now(), Type: core.EventViolation, Slice: ro.Canary[0],
			})
		}
		// Violations on non-canary slices must not count.
		orch.Events().Publish(core.Event{
			Time: s.Now(), Type: core.EventViolation, Slice: "sl-not-in-fleet",
		})
	})
	if err := s.RunFor(11 * time.Minute); err != nil {
		t.Fatal(err)
	}

	got, _ := m.GetRollout(ro.ID)
	if got.Phase != RolloutRolledBack {
		t.Fatalf("phase = %s (violations=%d), want rolled-back at 3 > max 2", got.Phase, got.Violations)
	}
	if got.Violations != 3 {
		t.Errorf("counted %d canary violations, want 3 (non-canary must not count)", got.Violations)
	}
	if fl, _ := m.GetFleet(f.ID); fl.Version != 1 {
		t.Errorf("fleet version = %d, want 1 (rollback keeps the old version)", fl.Version)
	}

	// The fleet is free for another rollout after the rollback.
	if _, err := m.StartRollout(RolloutConfig{Fleet: f.ID, ToVersion: 2}); err != nil {
		t.Errorf("rollout after rollback refused: %v", err)
	}
}

func TestStartRolloutValidation(t *testing.T) {
	m, _, _ := managerEnv(t, Quotas{})
	publishGold(t, m, 1.0)
	if _, err := m.StartRollout(RolloutConfig{Fleet: "fl-404", ToVersion: 1}); err == nil {
		t.Error("rollout on unknown fleet accepted")
	}
	f, err := m.Instantiate("gold", 1, []string{"a"}, []Region{RegionCore}, core.BatchFCFS, constDemand)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StartRollout(RolloutConfig{Fleet: f.ID, ToVersion: 9}); err == nil {
		t.Error("rollout to unpublished version accepted")
	}
}
