package intent

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/traffic"
)

// logf is swappable for tests.
var logf = log.Printf

// Intent-plane lifecycle events, published on the core bus alongside the
// slice lifecycle so SSE consumers can follow fleets and rollouts with the
// same ?type= filter. They carry no Slice ID: the invariant auditor applies
// its per-slice state machine only to slice-scoped events, so the intent
// plane can narrate without forging lifecycle transitions.
const (
	EventFleet   core.EventType = "fleet"
	EventRollout core.EventType = "rollout"
)

// RolloutPhase is the canary state machine: canary → promoted | rolled-back.
type RolloutPhase string

// The rollout phases.
const (
	// RolloutCanary: the canary subset runs the target version; violations
	// are being observed.
	RolloutCanary RolloutPhase = "canary"
	// RolloutPromoted: the window closed clean and the whole fleet now runs
	// the target version.
	RolloutPromoted RolloutPhase = "promoted"
	// RolloutRolledBack: the canary regressed and every member is back on
	// the prior version.
	RolloutRolledBack RolloutPhase = "rolled-back"
)

// Member is one fleet instance: the (tenant, region) cell and its admission
// outcome.
type Member struct {
	Slice      slice.ID         `json:"slice,omitempty"`
	Tenant     string           `json:"tenant"`
	Region     Region           `json:"region"`
	Admitted   bool             `json:"admitted"`
	RejectCode slice.RejectCode `json:"reject_code,omitempty"`
}

// Fleet is the set of slices a bulk instantiation produced from one
// template version. Members are in submission order (tenant-major), which
// is also the deterministic canary-selection order.
type Fleet struct {
	ID        string    `json:"id"`
	Template  string    `json:"template"`
	Version   int       `json:"version"`
	Members   []Member  `json:"members"`
	Admitted  int       `json:"admitted"`
	Rejected  int       `json:"rejected"`
	CreatedAt time.Time `json:"created_at"`
}

// Rollout is one canary reconfiguration of a fleet between template
// versions.
type Rollout struct {
	ID          string       `json:"id"`
	Fleet       string       `json:"fleet"`
	FromVersion int          `json:"from_version"`
	ToVersion   int          `json:"to_version"`
	Phase       RolloutPhase `json:"phase"`
	Canary      []slice.ID   `json:"canary"`
	Rest        []slice.ID   `json:"rest"`
	// SinceSeq is the bus sequence at canary start; only violations after it
	// count against the canary.
	SinceSeq   int64     `json:"since_seq"`
	Violations int       `json:"violations"`
	Window     string    `json:"window"`
	StartedAt  time.Time `json:"started_at"`
	DecidedAt  time.Time `json:"decided_at,omitzero"`
	Reason     string    `json:"reason,omitempty"`
}

// RolloutConfig parameterizes StartRollout.
type RolloutConfig struct {
	Fleet     string `json:"fleet"`
	ToVersion int    `json:"to_version"`
	// CanaryFraction of live members (by submission order) resized first;
	// (0,1], default 0.25, at least one member.
	CanaryFraction float64 `json:"canary_fraction"`
	// Window is how long canary violations are observed before the
	// promote-or-rollback decision; default 5m.
	Window time.Duration `json:"window"`
	// MaxViolations tolerated on canary members inside the window; one more
	// rolls the fleet back. Default 0: any canary violation aborts.
	MaxViolations int `json:"max_violations"`
}

// Quotas bounds bulk instantiation. Zero values mean unlimited.
type Quotas struct {
	// MaxSlicesPerTenant caps a tenant's live fleet membership across all
	// fleets (existing + requested).
	MaxSlicesPerTenant int `json:"max_slices_per_tenant"`
	// MaxSlicesPerRegion caps a region's live fleet membership likewise.
	MaxSlicesPerRegion int `json:"max_slices_per_region"`
}

// Config parameterizes NewManager.
type Config struct {
	Quotas Quotas
	// Guardrails override the publish-time chain (nil = DefaultGuardrails).
	Guardrails []Guardrail
}

// Manager is the intent-plane control head: it owns the template store and
// the fleet/rollout metadata, and drives the orchestrator through its
// public read (DryRun) and reconfiguration (SubmitBatch, SetProvisionCap)
// surface. One mutex serializes all intent operations — the plane is a
// low-rate control path, and serial decisions keep rollouts deterministic
// under the sim clock.
type Manager struct {
	orch  *core.Orchestrator
	clock sim.Scheduler
	store *Store

	mu           sync.Mutex
	quotas       Quotas
	fleets       map[string]*Fleet
	fleetOrder   []string
	rollouts     map[string]*Rollout
	rolloutOrder []string
	fleetSeq     int
	rolloutSeq   int
}

// NewManager builds the intent plane over an orchestrator and a clock (the
// sim scheduler in scenarios, a realtime clock in the daemon).
func NewManager(orch *core.Orchestrator, clock sim.Scheduler, cfg Config) *Manager {
	return &Manager{
		orch:     orch,
		clock:    clock,
		store:    NewStore(cfg.Guardrails),
		quotas:   cfg.Quotas,
		fleets:   make(map[string]*Fleet),
		rollouts: make(map[string]*Rollout),
	}
}

// Store returns the template registry.
func (m *Manager) Store() *Store { return m.store }

// DryRun runs the full admission feasibility chain for one (template,
// tenant, region) cell against live capacity without reserving anything.
// Drafts may be dry-run — that is the point of server-side validation
// before publish.
func (m *Manager) DryRun(name string, version int, tenant string, region Region) (core.DryRunReport, error) {
	t, ok := m.store.Get(name, version)
	if !ok {
		return core.DryRunReport{}, fmt.Errorf("intent: template %s version %d not found", name, version)
	}
	return m.orch.DryRun(t.Request(tenant, region))
}

// DemandFactory supplies the simulated demand process for one fleet cell;
// nil members (live mode) submit without a demand process.
type DemandFactory func(tenant string, region Region, t Template) traffic.Demand

// Instantiate bulk-creates one slice per tenant × region cell from a
// published template version, decided jointly by the batch policy, and
// returns the resulting fleet. Admitted members get the template's
// provisioning cap installed; rejected cells stay in the fleet record with
// their typed rejection for the operator to read.
func (m *Manager) Instantiate(name string, version int, tenants []string, regions []Region, policy core.BatchPolicy, demand DemandFactory) (Fleet, error) {
	t, ok := m.store.Get(name, version)
	if !ok {
		return Fleet{}, fmt.Errorf("intent: template %s version %d not found", name, version)
	}
	if t.State != TemplatePublished {
		return Fleet{}, fmt.Errorf("intent: template %s v%d is %s; only published templates can be instantiated", name, version, t.State)
	}
	if len(tenants) == 0 || len(regions) == 0 {
		return Fleet{}, fmt.Errorf("intent: instantiation needs at least one tenant and one region")
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	if err := m.checkQuotasLocked(tenants, regions); err != nil {
		return Fleet{}, err
	}

	// Tenant-major cell order: the submission order, the member order, and
	// therefore the canary-selection order — all deterministic.
	items := make([]core.BatchItem, 0, len(tenants)*len(regions))
	cells := make([]Member, 0, len(tenants)*len(regions))
	for _, tenant := range tenants {
		for _, region := range regions {
			it := core.BatchItem{Request: t.Request(tenant, region)}
			if demand != nil {
				it.Demand = demand(tenant, region, t)
			}
			items = append(items, it)
			cells = append(cells, Member{Tenant: tenant, Region: region})
		}
	}
	slices, err := m.orch.SubmitBatch(items, policy)
	if err != nil {
		return Fleet{}, err
	}

	m.fleetSeq++
	f := &Fleet{
		ID:        fmt.Sprintf("fl-%d", m.fleetSeq),
		Template:  name,
		Version:   version,
		CreatedAt: m.clock.Now(),
	}
	cap := t.TargetMbps()
	for i, sl := range slices {
		mem := cells[i]
		mem.Slice = sl.ID()
		if sl.State() == slice.StateRejected {
			if c, ok := sl.Cause(); ok {
				mem.RejectCode = c.Code
			}
			f.Rejected++
		} else {
			mem.Admitted = true
			f.Admitted++
			if _, err := m.orch.SetProvisionCap(sl.ID(), cap); err != nil {
				return Fleet{}, fmt.Errorf("intent: cap %s: %w", sl.ID(), err)
			}
		}
		f.Members = append(f.Members, mem)
	}
	m.fleets[f.ID] = f
	m.fleetOrder = append(m.fleetOrder, f.ID)
	m.publishLocked(EventFleet, fmt.Sprintf("%s: %s v%d instantiated, %d admitted / %d rejected", f.ID, name, version, f.Admitted, f.Rejected))
	return *f, nil
}

// checkQuotasLocked enforces tenant/region caps over live members of
// existing fleets plus the requested cells.
func (m *Manager) checkQuotasLocked(tenants []string, regions []Region) error {
	if m.quotas.MaxSlicesPerTenant == 0 && m.quotas.MaxSlicesPerRegion == 0 {
		return nil
	}
	perTenant := make(map[string]int)
	perRegion := make(map[Region]int)
	for _, id := range m.fleetOrder {
		for _, mem := range m.fleets[id].Members {
			if !mem.Admitted || !m.liveLocked(mem.Slice) {
				continue
			}
			perTenant[mem.Tenant]++
			perRegion[mem.Region]++
		}
	}
	for _, tenant := range tenants {
		perTenant[tenant] += len(regions)
		if q := m.quotas.MaxSlicesPerTenant; q > 0 && perTenant[tenant] > q {
			return fmt.Errorf("intent: quota: tenant %s would hold %d slices, cap %d", tenant, perTenant[tenant], q)
		}
	}
	for _, region := range regions {
		perRegion[region] += len(tenants)
		if q := m.quotas.MaxSlicesPerRegion; q > 0 && perRegion[region] > q {
			return fmt.Errorf("intent: quota: region %s would hold %d slices, cap %d", region, perRegion[region], q)
		}
	}
	return nil
}

// liveLocked reports whether a fleet member is still reconfigurable.
func (m *Manager) liveLocked(id slice.ID) bool {
	sl, ok := m.orch.Get(id)
	if !ok {
		return false
	}
	switch sl.State() {
	case slice.StateRejected, slice.StateTerminated:
		return false
	}
	return true
}

// GetFleet returns one fleet by ID.
func (m *Manager) GetFleet(id string) (Fleet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.fleets[id]
	if !ok {
		return Fleet{}, false
	}
	return *f, true
}

// Fleets lists fleets in creation order.
func (m *Manager) Fleets() []Fleet {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Fleet, 0, len(m.fleetOrder))
	for _, id := range m.fleetOrder {
		out = append(out, *m.fleets[id])
	}
	return out
}

// StartRollout resizes a canary fraction of the fleet to the target
// template version, then observes SLA-violation events on the canary
// members for the window. At the window edge the decision is automatic:
// a clean canary promotes the whole fleet; more than MaxViolations rolls
// every canary member back to the prior version. The decision runs on the
// manager's clock, so under the sim scheduler the whole state machine is
// deterministic.
func (m *Manager) StartRollout(cfg RolloutConfig) (Rollout, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	f, ok := m.fleets[cfg.Fleet]
	if !ok {
		return Rollout{}, fmt.Errorf("intent: fleet %s not found", cfg.Fleet)
	}
	for _, id := range m.rolloutOrder {
		if r := m.rollouts[id]; r.Fleet == cfg.Fleet && r.Phase == RolloutCanary {
			return Rollout{}, fmt.Errorf("intent: fleet %s already has rollout %s in flight", cfg.Fleet, r.ID)
		}
	}
	to, ok := m.store.Get(f.Template, cfg.ToVersion)
	if !ok {
		return Rollout{}, fmt.Errorf("intent: template %s version %d not found", f.Template, cfg.ToVersion)
	}
	if to.State != TemplatePublished {
		return Rollout{}, fmt.Errorf("intent: template %s v%d is %s; only published versions can roll out", f.Template, cfg.ToVersion, to.State)
	}
	if cfg.ToVersion == f.Version {
		return Rollout{}, fmt.Errorf("intent: fleet %s already runs %s v%d", f.ID, f.Template, f.Version)
	}
	frac := cfg.CanaryFraction
	if frac <= 0 || frac > 1 {
		frac = 0.25
	}
	window := cfg.Window
	if window <= 0 {
		window = 5 * time.Minute
	}

	var live []slice.ID
	for _, mem := range f.Members {
		if mem.Admitted && m.liveLocked(mem.Slice) {
			live = append(live, mem.Slice)
		}
	}
	if len(live) == 0 {
		return Rollout{}, fmt.Errorf("intent: fleet %s has no live members to roll out", f.ID)
	}
	n := int(math.Ceil(frac * float64(len(live))))
	if n < 1 {
		n = 1
	}

	m.rolloutSeq++
	r := &Rollout{
		ID:          fmt.Sprintf("ro-%d", m.rolloutSeq),
		Fleet:       f.ID,
		FromVersion: f.Version,
		ToVersion:   cfg.ToVersion,
		Phase:       RolloutCanary,
		Canary:      live[:n],
		Rest:        live[n:],
		SinceSeq:    m.orch.Events().LastSeq(),
		Window:      window.String(),
		StartedAt:   m.clock.Now(),
	}
	maxViol := cfg.MaxViolations

	cap := to.TargetMbps()
	for _, id := range r.Canary {
		if _, err := m.orch.SetProvisionCap(id, cap); err != nil {
			return Rollout{}, fmt.Errorf("intent: canary %s: %w", id, err)
		}
	}
	m.rollouts[r.ID] = r
	m.rolloutOrder = append(m.rolloutOrder, r.ID)
	m.publishLocked(EventRollout, fmt.Sprintf("%s: fleet %s canary v%d->v%d (%d/%d slices, window %s)", r.ID, f.ID, r.FromVersion, r.ToVersion, n, len(live), window))

	id := r.ID
	m.clock.After(window, "intent/"+id+"/decide", func() { m.decide(id, maxViol) })
	return *r, nil
}

// decide closes a rollout's observation window: count the canary's
// violation events since the rollout started and promote or roll back.
func (m *Manager) decide(id string, maxViolations int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.rollouts[id]
	if !ok || r.Phase != RolloutCanary {
		return
	}
	f := m.fleets[r.Fleet]
	canary := make(map[slice.ID]bool, len(r.Canary))
	for _, s := range r.Canary {
		canary[s] = true
	}
	for _, ev := range m.orch.Events().Recent(0) {
		if ev.Seq > r.SinceSeq && ev.Type == core.EventViolation && canary[ev.Slice] {
			r.Violations++
		}
	}
	r.DecidedAt = m.clock.Now()

	if r.Violations > maxViolations {
		// SLA regression on the canary: put every canary member back on the
		// prior version's cap. The rest of the fleet never moved.
		from, _ := m.store.Get(f.Template, r.FromVersion)
		cap := from.TargetMbps()
		for _, s := range r.Canary {
			if _, err := m.orch.SetProvisionCap(s, cap); err != nil {
				logf("intent: rollback %s: %v", s, err)
			}
		}
		r.Phase = RolloutRolledBack
		r.Reason = fmt.Sprintf("%d canary violations in window (max %d)", r.Violations, maxViolations)
		m.publishLocked(EventRollout, fmt.Sprintf("%s: fleet %s rolled back to v%d: %s", r.ID, f.ID, r.FromVersion, r.Reason))
		return
	}

	to, _ := m.store.Get(f.Template, r.ToVersion)
	cap := to.TargetMbps()
	for _, s := range r.Rest {
		if _, err := m.orch.SetProvisionCap(s, cap); err != nil {
			logf("intent: promote %s: %v", s, err)
		}
	}
	f.Version = r.ToVersion
	r.Phase = RolloutPromoted
	r.Reason = fmt.Sprintf("%d canary violations in window (max %d)", r.Violations, maxViolations)
	m.publishLocked(EventRollout, fmt.Sprintf("%s: fleet %s promoted to v%d (%d violations)", r.ID, f.ID, r.ToVersion, r.Violations))
}

// GetRollout returns one rollout by ID.
func (m *Manager) GetRollout(id string) (Rollout, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.rollouts[id]
	if !ok {
		return Rollout{}, false
	}
	return *r, true
}

// Rollouts lists rollouts in creation order.
func (m *Manager) Rollouts() []Rollout {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Rollout, 0, len(m.rolloutOrder))
	for _, id := range m.rolloutOrder {
		out = append(out, *m.rollouts[id])
	}
	return out
}

// publishLocked narrates an intent-plane transition on the core event bus.
func (m *Manager) publishLocked(t core.EventType, detail string) {
	m.orch.Events().Publish(core.Event{Time: m.clock.Now(), Type: t, Detail: detail})
}
