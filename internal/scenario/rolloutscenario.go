package scenario

// The intent-plane chaos scenario C9 (DESIGN.md §13): a fleet instantiated
// from a published template rides through two canary rollouts while the
// standard overloaded workload churns around it. The first rollout tightens
// provisioning mildly and must promote; the second overbooks aggressively
// enough that the canary slices regress their SLA mid-window, and the
// controller must roll the whole canary set back to the prior version
// automatically — with the cross-domain invariant auditor attached
// throughout and the whole run deterministic from the seed, independent of
// the shard count.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/invariant"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// RolloutChaosResult condenses one C9 run.
type RolloutChaosResult struct {
	// Result is the background-workload summary.
	Result Result `json:"result"`
	// Fleet is the fleet's final record (version reflects the promoted
	// rollout, not the rolled-back one).
	Fleet intent.Fleet `json:"fleet"`
	// Promoted is the benign rollout (must end RolloutPromoted).
	Promoted intent.Rollout `json:"promoted"`
	// RolledBack is the aggressive rollout (must end RolloutRolledBack).
	RolledBack intent.Rollout `json:"rolled_back"`
	// AuditStats and Violations are the invariant auditor's verdict.
	AuditStats invariant.Stats       `json:"audit_stats"`
	Violations []invariant.Violation `json:"violations"`
	// Digest is the canonical end-state image (the shard-equivalence and
	// determinism proofs compare it byte-for-byte).
	Digest []byte `json:"-"`
}

// RolloutChaosTitle is C9's human description.
const RolloutChaosTitle = "canary-rollout: benign rollout promotes, SLA-regressing rollout auto-rolls-back"

// RolloutChaosScenario runs C9 with the given seed and shard count (0 =
// default). The timeline, all on the simulated clock:
//
//	t=10m  fleet of 4 tenants x {core, edge} instantiated from gold v1
//	       (full provisioning), constant 24 Mbps offered per member
//	t=30m  rollout to v2 (provision 0.8, cap 32 Mbps > demand): canary 25%,
//	       20m window -> decision at t=50m promotes the fleet
//	t=2h   rollout to v3 (provision 0.25, cap 10 Mbps < demand): canary 50%,
//	       30m window -> canary slices violate every epoch, decision at
//	       t=2h30m rolls every canary back to the v2 cap
func RolloutChaosScenario(seed int64, shards int) (RolloutChaosResult, error) {
	opts := Options{
		Seed:             seed,
		Duration:         4 * time.Hour,
		MeanInterarrival: 5 * time.Minute,
		Orchestrator: core.Config{
			Overbook:  true,
			Risk:      0.9,
			PLMNLimit: 64,
			Audit:     true,
			Shards:    shards,
			// The rollout decision scans the replay ring for canary
			// violations since the rollout started; keep the ring deep
			// enough that a 30m window under churn is never lapped.
			EventBuffer: 16384,
		},
		Testbed: testbed.Config{MaxPLMNs: 64, RedundantTransport: true, MECHosts: 2, MECHostCPUs: 12},
	}
	r, err := NewRunner(opts)
	if err != nil {
		return RolloutChaosResult{}, err
	}
	mgr := intent.NewManager(r.Orch, r.Sim, intent.Config{
		Quotas: intent.Quotas{MaxSlicesPerTenant: 16, MaxSlicesPerRegion: 64},
	})

	// The template line: gold v1 (full provisioning) -> v2 (mild
	// tightening) -> v3 (aggressive overbooking, the SLA regression).
	base := intent.Template{
		Name:           "gold",
		ThroughputMbps: 40,
		MaxLatencyMs:   50,
		Duration:       6 * time.Hour, // outlives the run: the fleet never expires mid-rollout
		PriceEUR:       200,
		PenaltyEUR:     2,
	}
	now := r.Sim.Now()
	for _, frac := range []float64{1.0, 0.8, 0.25} {
		t := base
		t.ProvisionFraction = frac
		draft, err := mgr.Store().CreateDraft(t, now)
		if err != nil {
			return RolloutChaosResult{}, err
		}
		if _, err := mgr.Store().Publish(draft.Name, draft.Version, now); err != nil {
			return RolloutChaosResult{}, err
		}
	}

	tenants := []string{"fleet-a", "fleet-b", "fleet-c", "fleet-d"}
	regions := []intent.Region{intent.RegionCore, intent.RegionEdge}
	demand := func(string, intent.Region, intent.Template) traffic.Demand {
		return traffic.NewConstant(24, 0, nil) // deterministic offered load
	}

	// The intent timeline runs as sim callbacks, interleaved with the
	// background workload; errors are carried out to the end of the run.
	var (
		fleetID string
		stepErr error
	)
	fail := func(step string, err error) {
		if stepErr == nil {
			stepErr = fmt.Errorf("scenario: c9 %s: %w", step, err)
		}
	}
	r.Sim.After(10*time.Minute, "c9/instantiate", func() {
		f, err := mgr.Instantiate("gold", 1, tenants, regions, core.BatchDensity, demand)
		if err != nil {
			fail("instantiate", err)
			return
		}
		fleetID = f.ID
	})
	r.Sim.After(30*time.Minute, "c9/rollout-benign", func() {
		if fleetID == "" {
			fail("rollout-benign", fmt.Errorf("no fleet"))
			return
		}
		_, err := mgr.StartRollout(intent.RolloutConfig{
			Fleet:          fleetID,
			ToVersion:      2,
			CanaryFraction: 0.25,
			Window:         20 * time.Minute,
			MaxViolations:  5,
		})
		if err != nil {
			fail("rollout-benign", err)
		}
	})
	r.Sim.After(2*time.Hour, "c9/rollout-aggressive", func() {
		if fleetID == "" {
			fail("rollout-aggressive", fmt.Errorf("no fleet"))
			return
		}
		_, err := mgr.StartRollout(intent.RolloutConfig{
			Fleet:          fleetID,
			ToVersion:      3,
			CanaryFraction: 0.5,
			Window:         30 * time.Minute,
			MaxViolations:  5,
		})
		if err != nil {
			fail("rollout-aggressive", err)
		}
	})

	r.StartArrivals()
	if err := r.Sim.RunFor(opts.Duration); err != nil {
		return RolloutChaosResult{}, err
	}
	if stepErr != nil {
		return RolloutChaosResult{}, stepErr
	}

	res := RolloutChaosResult{Result: r.Collect()}
	res.Fleet, _ = mgr.GetFleet(fleetID)
	rollouts := mgr.Rollouts()
	if len(rollouts) != 2 {
		return res, fmt.Errorf("scenario: c9: %d rollouts recorded, want 2", len(rollouts))
	}
	res.Promoted, res.RolledBack = rollouts[0], rollouts[1]
	if a := r.Orch.Auditor(); a != nil {
		res.AuditStats = a.Stats()
		res.Violations = a.Violations()
	}
	res.Digest = r.Orch.StateDigest()
	return res, nil
}
