package scenario

// C9: the canary-rollout drill. The benign rollout must promote, the
// SLA-regressing rollout must roll back automatically, the invariant
// auditor must stay clean throughout, and the whole run — workload, fleet,
// both rollout decisions — must be bit-identical between 1 and 16 shards.

import (
	"bytes"
	"testing"

	"repro/internal/intent"
)

func runC9(t *testing.T, shards int) RolloutChaosResult {
	t.Helper()
	res, err := RolloutChaosScenario(42, shards)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkC9(t *testing.T, res RolloutChaosResult) {
	t.Helper()
	if len(res.Violations) != 0 {
		t.Errorf("invariant violations: %v", res.Violations)
	}
	if res.AuditStats.Events == 0 {
		t.Error("auditor saw no events — audit not attached?")
	}

	if res.Fleet.Admitted == 0 {
		t.Fatalf("fleet admitted no members: %+v", res.Fleet)
	}

	// Rollout 1 (gold v1 -> v2, cap above offered demand) promotes.
	if res.Promoted.Phase != intent.RolloutPromoted {
		t.Errorf("benign rollout phase = %s (violations=%d, reason=%q), want promoted",
			res.Promoted.Phase, res.Promoted.Violations, res.Promoted.Reason)
	}
	if res.Fleet.Version != 2 {
		t.Errorf("fleet version = %d, want 2 (promoted target)", res.Fleet.Version)
	}

	// Rollout 2 (v2 -> v3, cap far below offered demand) regresses the
	// canary SLA and must roll back automatically.
	if res.RolledBack.Phase != intent.RolloutRolledBack {
		t.Errorf("aggressive rollout phase = %s (violations=%d), want rolled-back",
			res.RolledBack.Phase, res.RolledBack.Violations)
	}
	if res.RolledBack.Violations <= res.Promoted.Violations {
		t.Errorf("aggressive rollout saw %d canary violations, benign saw %d — regression not detected",
			res.RolledBack.Violations, res.Promoted.Violations)
	}
}

func TestRolloutChaosScenario(t *testing.T) {
	checkC9(t, runC9(t, 0))
}

// TestRolloutChaosShardEquivalence proves the C9 outcome — including both
// rollout decisions and the canary violation counts that drove them — is
// independent of the shard count, byte-for-byte on the canonical state
// image.
func TestRolloutChaosShardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full C9 runs")
	}
	serial := runC9(t, 1)
	pipelined := runC9(t, 16)
	checkC9(t, serial)
	checkC9(t, pipelined)

	if !bytes.Equal(serial.Digest, pipelined.Digest) {
		t.Errorf("state digest diverged between shards=1 and shards=16:\n%s\n---\n%s", serial.Digest, pipelined.Digest)
	}
	if serial.Promoted.Violations != pipelined.Promoted.Violations ||
		serial.RolledBack.Violations != pipelined.RolledBack.Violations {
		t.Errorf("canary violation counts diverged: shards=1 (%d, %d) vs shards=16 (%d, %d)",
			serial.Promoted.Violations, serial.RolledBack.Violations,
			pipelined.Promoted.Violations, pipelined.RolledBack.Violations)
	}
	if serial.Fleet.Version != pipelined.Fleet.Version {
		t.Errorf("fleet version diverged: %d vs %d", serial.Fleet.Version, pipelined.Fleet.Version)
	}
}
