package scenario

import (
	"reflect"
	"testing"
)

// TestChaosScenariosInvariantClean runs every canned chaos scenario (C1–C6)
// with core.Config.Audit enabled and asserts that not one invariant tripped
// — capacity-ledger conservation, leak-freedom after every abort and
// teardown, event-sequence gap-freeness, per-slice state legality, epoch
// monotonicity — while proving the auditor and the timeline actually ran.
// CI runs this under -race.
func TestChaosScenariosInvariantClean(t *testing.T) {
	for _, name := range ChaosNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := ChaosScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				for _, v := range res.Violations {
					t.Errorf("invariant violated: %s", v)
				}
				t.Fatalf("%s (%s): %d invariant violations", name, res.Title, len(res.Violations))
			}
			if res.AuditStats.Sweeps < 50 {
				t.Fatalf("auditor barely swept: %+v", res.AuditStats)
			}
			if res.AuditStats.Events < 100 {
				t.Fatalf("auditor saw too few events: %+v", res.AuditStats)
			}
			if len(res.Steps) == 0 {
				t.Fatal("no chaos step fired")
			}
			if res.Result.Offered == 0 || res.Result.Gain.Admitted == 0 {
				t.Fatalf("degenerate workload: %+v", res.Result.Gain)
			}
		})
	}
}

// TestChaosScenarioShapes pins per-scenario expectations: the chaos machinery
// demonstrably did what each timeline scripts.
func TestChaosScenarioShapes(t *testing.T) {
	t.Run("c3-squeeze-storm", func(t *testing.T) {
		t.Parallel()
		res, err := ChaosScenario("c3", 42)
		if err != nil {
			t.Fatal(err)
		}
		if res.Result.Gain.ViolationEpochs == 0 {
			t.Fatal("mispredicting forecasts caused no SLA violation")
		}
		if res.Result.Gain.Reconfigurations == 0 {
			t.Fatal("squeeze storm caused no reconfiguration")
		}
	})
	t.Run("c5-typed-fault-rejections", func(t *testing.T) {
		t.Parallel()
		res, err := ChaosScenario("c5", 42)
		if err != nil {
			t.Fatal(err)
		}
		if res.Result.Gain.RejectReasons["fault-injected"] == 0 {
			t.Fatalf("no fault-injected rejection surfaced: %v", res.Result.Gain.RejectReasons)
		}
	})
	t.Run("c6-churn", func(t *testing.T) {
		t.Parallel()
		res, err := ChaosScenario("c6", 42)
		if err != nil {
			t.Fatal(err)
		}
		deleted := 0
		for _, sn := range res.Result.Slices {
			if sn.State == "terminated" && sn.Reason == "deleted by tenant" {
				deleted++
			}
		}
		if deleted < 10 {
			t.Fatalf("churn waves deleted only %d slices", deleted)
		}
	})
}

// TestChaosShardEquivalence is the chaos extension of the PR 4 equivalence
// proof: a fixed-seed chaos scenario — churn waves, link failures, fades,
// injected domain faults all firing — must produce identical slice
// outcomes, a bit-identical GainReport and bit-identical telemetry at
// Shards=1 and Shards=16, with zero invariant violations in both runs.
// Chaos randomness is seeded separately from the workload and victim
// selection walks slices in submission order, so shard count changes
// contention only, never outcomes.
func TestChaosShardEquivalence(t *testing.T) {
	for _, name := range []string{"c2", "c6"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			serial, err := ChaosScenarioSharded(name, 42, 1)
			if err != nil {
				t.Fatal(err)
			}
			pipelined, err := ChaosScenarioSharded(name, 42, 16)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Violations) != 0 || len(pipelined.Violations) != 0 {
				t.Fatalf("invariant violations: serial %v, pipelined %v", serial.Violations, pipelined.Violations)
			}
			if !reflect.DeepEqual(serial.Result.Gain, pipelined.Result.Gain) {
				t.Errorf("gain report diverged:\n shards=1:  %+v\n shards=16: %+v", serial.Result.Gain, pipelined.Result.Gain)
			}
			if !reflect.DeepEqual(serial.Result.Slices, pipelined.Result.Slices) {
				t.Errorf("slice outcomes diverged (%d vs %d snapshots)", len(serial.Result.Slices), len(pipelined.Result.Slices))
			}
			if serial.Result.Offered != pipelined.Result.Offered {
				t.Errorf("offered diverged: %d vs %d", serial.Result.Offered, pipelined.Result.Offered)
			}
			if !reflect.DeepEqual(serial.Steps, pipelined.Steps) {
				t.Errorf("fired chaos steps diverged:\n shards=1:  %v\n shards=16: %v", serial.Steps, pipelined.Steps)
			}
			if serial.AuditStats.Events != pipelined.AuditStats.Events {
				t.Errorf("event counts diverged: %d vs %d", serial.AuditStats.Events, pipelined.AuditStats.Events)
			}
		})
	}
}
