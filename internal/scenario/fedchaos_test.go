package scenario

import (
	"reflect"
	"testing"
)

// TestFedChaosScenariosInvariantClean runs the federated chaos scenarios
// (C7–C8) with both audit tiers on — every member's cross-domain auditor
// plus the federation conservation sweep at every barrier — and asserts not
// one invariant tripped, while proving the auditors and timelines actually
// ran. CI runs this under -race.
func TestFedChaosScenariosInvariantClean(t *testing.T) {
	for _, name := range FedChaosNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := FedChaosScenario(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				for _, v := range res.Violations {
					t.Errorf("invariant violated: %s", v)
				}
				t.Fatalf("%s (%s): %d invariant violations", name, res.Title, len(res.Violations))
			}
			if res.AuditStats.Sweeps < 50 {
				t.Fatalf("auditors barely swept: %+v", res.AuditStats)
			}
			if res.AuditStats.Events < 100 {
				t.Fatalf("auditors saw too few events: %+v", res.AuditStats)
			}
			if len(res.Steps) == 0 {
				t.Fatal("no chaos step fired")
			}
			if res.Offered == 0 || res.Stats.SpansInstalled == 0 {
				t.Fatalf("degenerate federated workload: %+v", res.Stats)
			}
			if res.Stats.SpansCrossCluster == 0 {
				t.Fatalf("no cross-cluster span occurred: %+v", res.Stats)
			}
		})
	}
}

// TestFedChaosScenarioShapes pins per-scenario expectations: the partition
// drill heals back to full membership, the fail-over drill ends with the
// victim dead and the survivors carrying new demand.
func TestFedChaosScenarioShapes(t *testing.T) {
	t.Run("c7-partition-heals", func(t *testing.T) {
		t.Parallel()
		res, err := FedChaosScenario("c7", 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range res.Clusters {
			if !c.Alive {
				t.Fatalf("member %s still unreachable after the heals: %+v", c.Name, c)
			}
		}
		if res.Stats.SpansLive == 0 {
			t.Fatalf("no span survived the run: %+v", res.Stats)
		}
	})
	t.Run("c8-failover-rehomes", func(t *testing.T) {
		t.Parallel()
		res, err := FedChaosScenario("c8", 42)
		if err != nil {
			t.Fatal(err)
		}
		var dead, alive int
		for _, c := range res.Clusters {
			if c.Name == "north" {
				if !c.Failed {
					t.Fatalf("north should be failed: %+v", c)
				}
				dead++
				continue
			}
			if !c.Alive {
				t.Fatalf("survivor %s not alive: %+v", c.Name, c)
			}
			alive++
		}
		if dead != 1 || alive != 2 {
			t.Fatalf("membership after fail-over: %+v", res.Clusters)
		}
		// The survivors carried demand after the failure: their member
		// admissions keep growing, so live spans exist at the end even
		// though every pre-failure span on north was rolled back.
		if res.Stats.SpansLive == 0 {
			t.Fatalf("no live span on the survivors: %+v", res.Stats)
		}
	})
}

// TestFedChaosDeterminism: the same federated scenario at the same seed is
// bit-identical — outcomes, steps, books and the aggregated gain report.
func TestFedChaosDeterminism(t *testing.T) {
	a, err := FedChaosScenario("c7", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FedChaosScenario("c7", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("federated chaos run not deterministic:\n a: %+v\n b: %+v", a.Stats, b.Stats)
	}
}
