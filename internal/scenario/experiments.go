package scenario

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/monitor"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// This file implements the experiment battery of DESIGN.md §4. Each
// function regenerates one figure/claim of the paper and returns plain row
// structs that cmd/experiments renders and bench_test.go measures.

// InstallStage is one row of the F2 installation timeline.
type InstallStage struct {
	Stage string
	At    time.Duration // offset from submission
}

// InstallTimelineRows reproduces F2: the per-domain installation workflow
// of one admitted slice on the default testbed ("radio resources are
// reserved through the RAN controller, dedicated paths are selected ...,
// OpenEPC instances are deployed ... After few seconds, user devices ...
// are allowed to connect").
func InstallTimelineRows(seed int64) ([]InstallStage, error) {
	r, err := NewRunner(Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	sl, err := r.Orch.Submit(slice.Request{
		Tenant: "demo-tenant",
		SLA: slice.SLA{
			ThroughputMbps: 30, MaxLatencyMs: 20,
			Duration: time.Hour, PriceEUR: 100, PenaltyEUR: 2,
			Class: slice.ClassEHealth,
		},
	}, traffic.NewConstant(15, 0, nil))
	if err != nil {
		return nil, err
	}
	if err := r.Sim.RunFor(30 * time.Second); err != nil {
		return nil, err
	}
	tl, _ := r.Orch.Timeline(sl.ID())
	return []InstallStage{
		{Stage: "request submitted + admission + reservations", At: 0},
		{Stage: "RAN controller: PRBs reserved, PLMN broadcast", At: tl.RadioDone.Sub(tl.Submitted)},
		{Stage: "transport controller: paths up, flows installed", At: tl.PathsDone.Sub(tl.Submitted)},
		{Stage: "Heat: vEPC stack created", At: tl.StackDone.Sub(tl.Submitted)},
		{Stage: "OpenEPC booted: UEs may attach (slice active)", At: tl.Active.Sub(tl.Submitted)},
	}, nil
}

// AdmissionRow is one row of the D1 experiment.
type AdmissionRow struct {
	// MeanInterarrival encodes the offered load (smaller = heavier).
	MeanInterarrival time.Duration
	Offered          int
	Admitted         int
	Rejected         int
	AdmissionRate    float64
	RevenueEUR       float64
	PenaltyEUR       float64
	NetEUR           float64
	ViolationRate    float64
}

// AdmissionSweep reproduces D1: admission rate and revenue vs. offered
// load, with and without overbooking. The overbooked system should admit
// substantially more slices at moderate violation cost (shape from [3]).
func AdmissionSweep(seed int64, interarrivals []time.Duration, overbook bool) ([]AdmissionRow, error) {
	rows := make([]AdmissionRow, 0, len(interarrivals))
	for _, ia := range interarrivals {
		res, err := Run(Options{
			Seed:             seed,
			Duration:         8 * time.Hour,
			MeanInterarrival: ia,
			Orchestrator: core.Config{
				Overbook:  overbook,
				Risk:      0.95,
				PLMNLimit: 64, // lift the SIB1 limit so radio capacity binds
			},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AdmissionRow{
			MeanInterarrival: ia,
			Offered:          res.Offered,
			Admitted:         res.Gain.Admitted,
			Rejected:         res.Gain.Rejected,
			AdmissionRate:    res.AdmissionRate,
			RevenueEUR:       res.Gain.RevenueTotalEUR,
			PenaltyEUR:       res.Gain.PenaltyTotalEUR,
			NetEUR:           res.NetRevenueEUR,
			ViolationRate:    res.ViolationRate,
		})
	}
	return rows, nil
}

// GainPoint is one sample of the D2 dashboard series.
type GainPoint struct {
	At               time.Duration
	MultiplexingGain float64
	OverbookingRatio float64
	PenaltiesEUR     float64
	ActiveSlices     float64
}

// GainSeries reproduces D2: the dashboard's gains-vs-penalties panel over a
// run with multiple slices, sampled every sampleEvery of simulated time.
func GainSeries(seed int64, duration, sampleEvery time.Duration) ([]GainPoint, error) {
	r, err := NewRunner(Options{
		Seed:             seed,
		Duration:         duration,
		MeanInterarrival: 20 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 64},
	})
	if err != nil {
		return nil, err
	}
	var points []GainPoint
	start := r.Sim.Now()
	r.Sim.Every(sampleEvery, "sample", func() {
		g := r.Orch.Gain()
		points = append(points, GainPoint{
			At:               r.Sim.Now().Sub(start),
			MultiplexingGain: g.MultiplexingGain,
			OverbookingRatio: g.OverbookingRatio,
			PenaltiesEUR:     g.PenaltyTotalEUR,
			ActiveSlices:     float64(g.Active),
		})
	})
	r.StartArrivals()
	if err := r.Sim.RunFor(duration); err != nil {
		return nil, err
	}
	return points, nil
}

// ForecastRow is one row of the D3 accuracy table.
type ForecastRow struct {
	Forecaster string
	MAE        float64
	RMSE       float64
	MAPE       float64
}

// ForecastTable reproduces D3: one-step accuracy of the forecaster zoo on
// diurnal mobile traffic (the [4] workload). Holt-Winters should win.
func ForecastTable(seed int64) []ForecastRow {
	const epochsPerDay = 96 // 15-minute epochs
	r, _ := NewRunner(Options{Seed: seed})
	rng := r.Sim.Rand()
	demand := traffic.NewDiurnal(100, 45, 20, 6, rng)
	series := make([]float64, 14*epochsPerDay)
	at := r.Sim.Now()
	for i := range series {
		series[i] = demand.Sample(at)
		at = at.Add(15 * time.Minute)
	}
	results := forecast.Evaluate(series, 3*epochsPerDay,
		forecast.NewHoltWinters(0.3, 0.05, 0.3, epochsPerDay),
		forecast.NewSeasonalNaive(epochsPerDay),
		forecast.NewHolt(0.4, 0.1),
		forecast.NewEWMA(0.3),
		forecast.NewMovingAverage(8),
		forecast.NewNaive(),
	)
	rows := make([]ForecastRow, 0, len(results))
	for _, res := range forecast.RankByRMSE(results) {
		rows = append(rows, ForecastRow{
			Forecaster: res.Name,
			MAE:        res.Accuracy.MAE(),
			RMSE:       res.Accuracy.RMSE(),
			MAPE:       res.Accuracy.MAPE(),
		})
	}
	return rows
}

// RiskRow is one row of the D4 overbooking trade-off sweep.
type RiskRow struct {
	Risk             float64 // provisioning confidence; 1.0 = no overbooking
	Admitted         int
	MultiplexingGain float64
	ViolationRate    float64
	RevenueEUR       float64
	PenaltyEUR       float64
	NetEUR           float64
}

// RiskSweep reproduces D4: "the machine-learning engine ... trades off
// between multiplexing gain and SLA violations". Sweeping the provisioning
// risk maps the whole curve: gain and violations both grow as risk drops;
// net revenue peaks in between.
func RiskSweep(seed int64, risks []float64) ([]RiskRow, error) {
	rows := make([]RiskRow, 0, len(risks))
	for _, risk := range risks {
		res, err := Run(Options{
			Seed:             seed,
			Duration:         12 * time.Hour,
			MeanInterarrival: 10 * time.Minute,
			Orchestrator: core.Config{
				Overbook:  risk < 0.9995,
				Risk:      risk,
				PLMNLimit: 64,
			},
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RiskRow{
			Risk:             risk,
			Admitted:         res.Gain.Admitted,
			MultiplexingGain: res.MeanMultiplexingGain,
			ViolationRate:    res.ViolationRate,
			RevenueEUR:       res.Gain.RevenueTotalEUR,
			PenaltyEUR:       res.Gain.PenaltyTotalEUR,
			NetEUR:           res.NetRevenueEUR,
		})
	}
	return rows, nil
}

// UtilizationRow is one row of the D5 per-domain comparison.
type UtilizationRow struct {
	Domain       string
	PeakMeanUtil float64 // without overbooking
	OverbookUtil float64 // with overbooking
}

// DomainUtilization reproduces D5: mean utilization of each domain's
// primary resource with and without overbooking under identical load.
// Overbooking lowers *reserved* radio utilization per admitted slice while
// serving more slices — the statistical multiplexing the demo displays.
func DomainUtilization(seed int64) ([]UtilizationRow, []UtilizationRow, error) {
	run := func(overbook bool) (map[string]float64, Result, error) {
		r, err := NewRunner(Options{
			Seed:             seed,
			Duration:         8 * time.Hour,
			MeanInterarrival: 12 * time.Minute,
			Orchestrator:     core.Config{Overbook: overbook, Risk: 0.9, PLMNLimit: 64},
		})
		if err != nil {
			return nil, Result{}, err
		}
		r.StartArrivals()
		if err := r.Sim.RunFor(8 * time.Hour); err != nil {
			return nil, Result{}, err
		}
		utils := map[string]float64{}
		for _, d := range []string{"ran", "transport", "cloud"} {
			utils[d] = r.Orch.Store().Series(monitor.DomainMetric(d, "utilization")).WindowStats(0).Mean
		}
		return utils, r.Collect(), nil
	}
	peak, _, err := run(false)
	if err != nil {
		return nil, nil, err
	}
	over, _, err := run(true)
	if err != nil {
		return nil, nil, err
	}
	var rows []UtilizationRow
	for _, d := range []string{"ran", "transport", "cloud"} {
		rows = append(rows, UtilizationRow{Domain: d, PeakMeanUtil: peak[d], OverbookUtil: over[d]})
	}
	return rows, nil, nil
}

// PlacementRow is one row of the D6 latency-driven placement experiment.
type PlacementRow struct {
	MaxLatencyMs float64
	DataCenter   string // "" when rejected
	Reason       string
}

// PlacementSplit reproduces the placement half of D6: identical slices with
// shrinking latency budgets move from the core DC to the edge, then become
// unfeasible.
func PlacementSplit(seed int64, latenciesMs []float64) ([]PlacementRow, error) {
	rows := make([]PlacementRow, 0, len(latenciesMs))
	for _, lat := range latenciesMs {
		r, err := NewRunner(Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		sl, err := r.Orch.Submit(slice.Request{
			Tenant: "probe",
			SLA: slice.SLA{
				ThroughputMbps: 20, MaxLatencyMs: lat,
				Duration: time.Hour, PriceEUR: 50, PenaltyEUR: 1,
			},
		}, nil)
		if err != nil {
			return nil, err
		}
		r.Sim.RunFor(20 * time.Second)
		row := PlacementRow{MaxLatencyMs: lat}
		if sl.State() == slice.StateRejected {
			row.Reason = sl.Reason()
		} else {
			row.DataCenter = sl.Allocation().DataCenter
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RejectionHistogram runs a heavily loaded scenario and returns the
// rejection-reason counts (the other half of D6).
func RejectionHistogram(seed int64) (map[string]int, error) {
	res, err := Run(Options{
		Seed:             seed,
		Duration:         8 * time.Hour,
		MeanInterarrival: 4 * time.Minute, // overload
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9},
	})
	if err != nil {
		return nil, err
	}
	return res.Gain.RejectReasons, nil
}

// LoadedRunner builds a runner with n active slices, epochs already
// flowing — the fixture for the F1 control-cycle benchmark.
func LoadedRunner(seed int64, n int) (*Runner, error) {
	r, err := NewRunner(Options{
		Seed: seed,
		Orchestrator: core.Config{
			Overbook:  true,
			Risk:      0.9,
			PLMNLimit: int(math.Max(float64(n)+2, 6)),
		},
		Testbed: scaleTestbedFor(n),
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := r.SubmitNow(); err != nil {
			return nil, err
		}
	}
	r.Orch.Start()
	if err := r.Sim.RunFor(30 * time.Minute); err != nil {
		return nil, err
	}
	return r, nil
}

// scaleTestbedFor grows the radio/cloud capacity so n concurrent slices fit.
func scaleTestbedFor(n int) testbed.Config {
	cfg := testbed.Default()
	if n > 4 {
		cfg.ENBs = 2 * ((n + 3) / 4)
		cfg.CoreHosts = 2 * cfg.ENBs
		cfg.EdgeHosts = cfg.ENBs
	}
	return cfg
}
