package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/testbed"
)

func TestRunBasicScenario(t *testing.T) {
	res, err := Run(Options{
		Seed:             1,
		Duration:         4 * time.Hour,
		MeanInterarrival: 20 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no requests generated")
	}
	if res.Gain.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if res.AdmissionRate <= 0 || res.AdmissionRate > 1 {
		t.Fatalf("admission rate %v", res.AdmissionRate)
	}
	if res.ServedEpochs == 0 {
		t.Fatal("no epochs served")
	}
	if res.Gain.Epochs == 0 {
		t.Fatal("control loop never ran")
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	opts := Options{
		Seed:             7,
		Duration:         3 * time.Hour,
		MeanInterarrival: 15 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, PLMNLimit: 32},
	}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered != b.Offered || a.Gain.Admitted != b.Gain.Admitted ||
		a.NetRevenueEUR != b.NetRevenueEUR || a.ViolationEpochs != b.ViolationEpochs {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, err := Run(Options{Seed: 8, Duration: 3 * time.Hour, MeanInterarrival: 15 * time.Minute,
		Orchestrator: core.Config{Overbook: true, PLMNLimit: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Offered == a.Offered && c.NetRevenueEUR == a.NetRevenueEUR {
		t.Log("warning: different seeds produced identical aggregate (unlikely but possible)")
	}
}

func TestOverbookingBeatsPeakOnAdmissions(t *testing.T) {
	run := func(overbook bool) Result {
		res, err := Run(Options{
			Seed:             3,
			Duration:         8 * time.Hour,
			MeanInterarrival: 8 * time.Minute, // heavy load
			Orchestrator:     core.Config{Overbook: overbook, Risk: 0.9, PLMNLimit: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	peak := run(false)
	over := run(true)
	if over.Gain.Admitted <= peak.Gain.Admitted {
		t.Fatalf("overbooking admitted %d <= peak %d", over.Gain.Admitted, peak.Gain.Admitted)
	}
	if over.MeanMultiplexingGain <= 1.0 {
		t.Fatalf("mean multiplexing gain %.3f", over.MeanMultiplexingGain)
	}
	if peak.MeanMultiplexingGain > 1.01 {
		t.Fatalf("peak provisioning shows gain %.3f", peak.MeanMultiplexingGain)
	}
	if over.Gain.RevenueTotalEUR <= peak.Gain.RevenueTotalEUR {
		t.Fatalf("overbooking revenue %.0f <= peak %.0f", over.Gain.RevenueTotalEUR, peak.Gain.RevenueTotalEUR)
	}
}

func TestInstallTimelineRowsOrdered(t *testing.T) {
	rows, err := InstallTimelineRows(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d stages", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].At <= rows[i-1].At {
			t.Fatalf("stages out of order: %+v", rows)
		}
	}
	total := rows[len(rows)-1].At
	if total < 5*time.Second || total > 15*time.Second {
		t.Fatalf("install total %v outside the demo's few-seconds window", total)
	}
}

func TestAdmissionSweepMonotoneLoad(t *testing.T) {
	ias := []time.Duration{30 * time.Minute, 10 * time.Minute, 4 * time.Minute}
	rows, err := AdmissionSweep(1, ias, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Offered load must grow as interarrival shrinks.
	if !(rows[0].Offered < rows[1].Offered && rows[1].Offered < rows[2].Offered) {
		t.Fatalf("offered not increasing: %+v", rows)
	}
	// Admission rate must not increase under heavier load.
	if rows[2].AdmissionRate > rows[0].AdmissionRate+0.05 {
		t.Fatalf("admission rate grew under load: %+v", rows)
	}
}

func TestGainSeriesMonotonePenalties(t *testing.T) {
	pts, err := GainSeries(1, 6*time.Hour, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PenaltiesEUR < pts[i-1].PenaltiesEUR {
			t.Fatalf("penalties decreased at %d", i)
		}
		if pts[i].At <= pts[i-1].At {
			t.Fatal("time not increasing")
		}
	}
}

func TestForecastTableHoltWintersWins(t *testing.T) {
	rows := ForecastTable(1)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Forecaster[:12] != "holt-winters" {
		t.Fatalf("winner %s, want holt-winters (table: %+v)", rows[0].Forecaster, rows)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RMSE < rows[i-1].RMSE {
			t.Fatal("table not ranked by RMSE")
		}
	}
}

func TestRiskSweepTradeoffShape(t *testing.T) {
	rows, err := RiskSweep(1, []float64{1.0, 0.95, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	noOB, mid, aggressive := rows[0], rows[1], rows[2]
	if noOB.ViolationRate > 0.001 {
		t.Fatalf("no-overbooking violation rate %.4f", noOB.ViolationRate)
	}
	if noOB.MultiplexingGain > 1.01 {
		t.Fatalf("no-overbooking gain %.3f", noOB.MultiplexingGain)
	}
	if mid.MultiplexingGain <= 1.0 {
		t.Fatalf("overbooked gain %.3f", mid.MultiplexingGain)
	}
	if aggressive.ViolationRate < mid.ViolationRate {
		t.Fatalf("aggressive risk has fewer violations (%.4f < %.4f)", aggressive.ViolationRate, mid.ViolationRate)
	}
	if mid.Admitted <= noOB.Admitted {
		t.Fatalf("overbooking admitted %d <= peak %d", mid.Admitted, noOB.Admitted)
	}
}

func TestPlacementSplitLatencyDriven(t *testing.T) {
	rows, err := PlacementSplit(1, []float64{100, 20, 4, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].DataCenter != testbed.CoreDC {
		t.Fatalf("100ms placed in %q", rows[0].DataCenter)
	}
	if rows[2].DataCenter != testbed.EdgeDC {
		t.Fatalf("4ms placed in %q (reason %q)", rows[2].DataCenter, rows[2].Reason)
	}
	if rows[3].DataCenter != "" || rows[3].Reason == "" {
		t.Fatalf("0.5ms should be rejected: %+v", rows[3])
	}
}

func TestRejectionHistogramNonEmptyUnderOverload(t *testing.T) {
	hist, err := RejectionHistogram(1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		t.Fatal("overloaded scenario produced no rejections")
	}
}

func TestDomainUtilizationOverbookingLowersReservedRAN(t *testing.T) {
	rows, _, err := DomainUtilization(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var ranRow UtilizationRow
	for _, r := range rows {
		if r.Domain == "ran" {
			ranRow = r
		}
		if r.PeakMeanUtil < 0 || r.PeakMeanUtil > 1 || r.OverbookUtil < 0 || r.OverbookUtil > 1 {
			t.Fatalf("utilization out of range: %+v", r)
		}
	}
	if ranRow.Domain == "" {
		t.Fatal("no RAN row")
	}
}

func TestLoadedRunnerHasActiveSlices(t *testing.T) {
	r, err := LoadedRunner(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Orch.ActiveCount(); got < 4 {
		t.Fatalf("loaded runner has %d active slices", got)
	}
	// One more epoch must run cleanly.
	r.Orch.RunEpoch()
}

func TestScaleTestbedFor(t *testing.T) {
	small := scaleTestbedFor(2)
	if small.ENBs != 2 {
		t.Fatalf("small testbed %d eNBs", small.ENBs)
	}
	big := scaleTestbedFor(16)
	if big.ENBs <= 2 {
		t.Fatalf("big testbed %d eNBs", big.ENBs)
	}
}
