package scenario

import (
	"time"

	"repro/internal/core"
	"repro/internal/testbed"
)

// This file implements experiment D7: the pluggable-domain scenario. The
// testbed registers the optional fourth orchestration domain — an edge MEC
// compute pool — behind the same generic Domain surface as the radio,
// transport and cloud controllers, and the standard scenario runner drives
// it through the unchanged core engine: MEC apps are placed at install,
// squeezed by the overbooking loop, released at teardown and show up as
// typed "mec-capacity" rejections once the small pool binds.

// MECResult condenses one D7 run.
type MECResult struct {
	// Result is the standard scenario outcome.
	Result Result
	// MECRejections counts typed mec-capacity rejections — the proof the
	// fourth domain participates in admission.
	MECRejections int
	// MECUtilization is the pool's final CPU utilization.
	MECUtilization float64
	// PlacedApps is the number of edge apps still placed at the end.
	PlacedApps int
}

// MECScenario runs an overloaded mixed workload on a testbed with the MEC
// domain enabled: a pool small enough that edge compute — not radio — is
// the binding constraint for part of the load.
func MECScenario(seed int64) (MECResult, error) {
	r, err := NewRunner(Options{
		Seed:             seed,
		Duration:         8 * time.Hour,
		MeanInterarrival: 6 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 64},
		Testbed: testbed.Config{
			MECHosts:    2,
			MECHostCPUs: 3, // 6 CPUs total: a handful of slices saturate it
		},
	})
	if err != nil {
		return MECResult{}, err
	}
	r.StartArrivals()
	if err := r.Sim.RunFor(8 * time.Hour); err != nil {
		return MECResult{}, err
	}
	res := r.Collect()
	cap := r.TB.MEC.Capacity()
	return MECResult{
		Result:         res,
		MECRejections:  res.Gain.RejectReasons["mec-capacity"],
		MECUtilization: r.TB.MEC.Utilization(),
		PlacedApps:     cap.Apps,
	}, nil
}
