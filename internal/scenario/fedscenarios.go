package scenario

// The federated chaos scenarios C7–C8: multi-cluster failure drills run
// against a federation of full orchestrators, with BOTH audit tiers on —
// every member runs the cross-domain invariant auditor (C1–C6's machinery)
// and the federation runs the conservation sweep over its hierarchical
// ledger at every barrier. C7 is the partition drill: a member cluster
// splits from the federation, spans touching it roll back leak-free, the
// heal reconverges the books. C8 is the fail-over drill: a member dies
// permanently and placement re-homes all new demand onto the survivors.
// They live in their own registry (FedChaosNames) rather than chaosSpecs
// because the single-cluster harnesses — the crash-recovery reference runs
// in particular — assume one orchestrator per scenario.

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/invariant"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// FedOptions parameterizes one federated simulation run.
type FedOptions struct {
	// Seed drives arrivals and the per-member testbed channels (each member
	// derives its own RNG from Seed and its name inside federation.Join).
	Seed int64
	// Duration is the simulated span (default 4h).
	Duration time.Duration
	// MeanInterarrival is the mean gap between federated requests
	// (default 5m).
	MeanInterarrival time.Duration
	// RequestScale multiplies each generated request's throughput contract
	// (price and penalty scale with it), pushing requests past single-member
	// headroom so cross-cluster spans actually occur (default 1).
	RequestScale float64
	// Clusters are the members to join (required).
	Clusters []federation.ClusterConfig
	// Federation tunes the federation tier (Seed is overridden by Seed).
	Federation federation.Config
	// Profiles are the tenant archetypes (default traffic.DefaultProfiles).
	Profiles []traffic.Profile
}

func (o FedOptions) withDefaults() FedOptions {
	if o.Duration <= 0 {
		o.Duration = 4 * time.Hour
	}
	if o.MeanInterarrival <= 0 {
		o.MeanInterarrival = 5 * time.Minute
	}
	if o.RequestScale <= 0 {
		o.RequestScale = 1
	}
	if o.Profiles == nil {
		o.Profiles = traffic.DefaultProfiles()
	}
	return o
}

// FedRunner couples a simulator, a federation of member clusters and the
// federated request workload.
type FedRunner struct {
	Sim   *sim.Simulator
	Fed   *federation.Federation
	Gen   *traffic.RequestGenerator
	opts  FedOptions
	count int
}

// NewFedRunner builds the federated environment (without starting arrivals).
func NewFedRunner(opts FedOptions) (*FedRunner, error) {
	opts = opts.withDefaults()
	if len(opts.Clusters) == 0 {
		return nil, fmt.Errorf("scenario: federated run needs at least one cluster")
	}
	s := sim.NewSimulator(opts.Seed)
	fcfg := opts.Federation
	fcfg.Seed = opts.Seed
	fed := federation.New(fcfg, s)
	for _, cc := range opts.Clusters {
		if _, err := fed.Join(cc); err != nil {
			return nil, err
		}
	}
	gen := traffic.NewRequestGenerator(opts.Profiles, opts.MeanInterarrival, s.Rand())
	return &FedRunner{Sim: s, Fed: fed, Gen: gen, opts: opts}, nil
}

// SubmitNow injects one generated federated request immediately.
func (r *FedRunner) SubmitNow() (federation.SpanStatus, error) {
	g := r.Gen.Next(r.Sim.Now())
	r.count++
	sla := g.Request.SLA
	sla.ThroughputMbps *= r.opts.RequestScale
	sla.PriceEUR *= r.opts.RequestScale
	sla.PenaltyEUR *= r.opts.RequestScale
	return r.Fed.Submit(federation.Request{Tenant: g.Request.Tenant, SLA: sla})
}

// StartArrivals starts the members, the federation barrier and the Poisson
// request process.
func (r *FedRunner) StartArrivals() {
	r.Fed.Start()
	var schedule func()
	schedule = func() {
		r.Sim.After(r.Gen.NextInterarrival(), "arrival", func() {
			_, _ = r.SubmitNow()
			schedule()
		})
	}
	schedule()
}

// Offered returns the number of federated requests generated so far.
func (r *FedRunner) Offered() int { return r.count }

// FedChaosResult condenses one federated chaos run.
type FedChaosResult struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	// Offered counts the federated requests generated.
	Offered int `json:"offered"`
	// Stats are the federation-tier placement counters.
	Stats federation.Stats `json:"stats"`
	// Gain is the federation-wide aggregated gain report.
	Gain core.GainReport `json:"gain"`
	// ClusterGains are the per-member reports, in name order.
	ClusterGains []federation.ClusterGain `json:"cluster_gains"`
	// Clusters is the final registry view.
	Clusters []federation.ClusterInfo `json:"clusters"`
	// Steps lists the timeline steps that fired, in execution order.
	Steps []chaos.FiredStep `json:"steps"`
	// AuditStats merges the federation auditor with every member auditor.
	AuditStats invariant.Stats `json:"audit_stats"`
	// Violations merges every tier's detected breaches (empty == clean).
	Violations []invariant.Violation `json:"violations"`
}

// fedChaosSpec couples a federated scenario's options with its timeline.
type fedChaosSpec struct {
	title    string
	opts     func(seed int64) FedOptions
	timeline func(seed int64) *chaos.Timeline
}

// fedChaosBaseOptions is the shared chassis: three members at distinct
// federation latencies, overbooking and both audit tiers on, requests scaled
// 2x so single members saturate and spans split across clusters.
func fedChaosBaseOptions(seed int64, dur, ia time.Duration) FedOptions {
	member := func(name, location string, latencyMs float64) federation.ClusterConfig {
		return federation.ClusterConfig{
			Name:      name,
			Location:  location,
			LatencyMs: latencyMs,
			Orchestrator: core.Config{
				Overbook:  true,
				Risk:      0.9,
				PLMNLimit: 64,
				Audit:     true,
			},
			Testbed: testbed.Config{MaxPLMNs: 64, RedundantTransport: true},
		}
	}
	return FedOptions{
		Seed:             seed,
		Duration:         dur,
		MeanInterarrival: ia,
		RequestScale:     2,
		Clusters: []federation.ClusterConfig{
			member("east", "eu-east", 2),
			member("west", "eu-west", 3),
			member("north", "eu-north", 5),
		},
		Federation: federation.Config{Audit: true},
	}
}

// fedChaosSpecs defines C7–C8.
var fedChaosSpecs = map[string]fedChaosSpec{
	"c7": {
		title: "cluster-partition: a member splits from the federation, spans roll back, the heal reconverges",
		opts: func(seed int64) FedOptions {
			return fedChaosBaseOptions(seed, 4*time.Hour, 5*time.Minute)
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				At(45*time.Minute, "preload-burst", chaos.BurstSubmit(8)).
				At(60*time.Minute, "partition-west", chaos.PartitionCluster("west")).
				At(70*time.Minute, "burst-during-partition", chaos.BurstSubmit(6)).
				At(100*time.Minute, "heal-west", chaos.HealCluster("west")).
				At(110*time.Minute, "burst-after-heal", chaos.BurstSubmit(6)).
				At(150*time.Minute, "partition-east", chaos.PartitionCluster("east")).
				At(170*time.Minute, "heal-east", chaos.HealCluster("east")).
				At(180*time.Minute, "final-burst", chaos.BurstSubmit(6))
		},
	},
	"c8": {
		title: "cluster-fail-over: a member dies permanently and placement re-homes all new demand",
		opts: func(seed int64) FedOptions {
			return fedChaosBaseOptions(seed, 4*time.Hour, 5*time.Minute)
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				At(45*time.Minute, "preload-burst", chaos.BurstSubmit(8)).
				At(90*time.Minute, "fail-north", chaos.FailCluster("north")).
				Every(100*time.Minute, 25*time.Minute, 5, "re-home-burst", chaos.BurstSubmit(5))
		},
	},
}

// FedChaosNames lists the canned federated scenarios in order.
func FedChaosNames() []string {
	names := make([]string, 0, len(fedChaosSpecs))
	for n := range fedChaosSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FedChaosTitle returns the federated scenario's human description.
func FedChaosTitle(name string) string { return fedChaosSpecs[name].title }

// FedChaosScenario runs one canned federated chaos scenario (c7, c8) with
// both audit tiers attached and returns the outcome plus the merged audit
// verdict. Deterministic from the seed, independent of member join order.
func FedChaosScenario(name string, seed int64) (FedChaosResult, error) {
	spec, ok := fedChaosSpecs[name]
	if !ok {
		return FedChaosResult{}, fmt.Errorf("scenario: unknown federated chaos scenario %q (have %v)", name, FedChaosNames())
	}
	opts := spec.opts(seed)
	r, err := NewFedRunner(opts)
	if err != nil {
		return FedChaosResult{}, err
	}
	env := &chaos.Env{
		Sim:    r.Sim,
		Fed:    r.Fed,
		Submit: func() { _, _ = r.SubmitNow() },
	}
	spec.timeline(opts.Seed).Install(env)
	r.StartArrivals()
	if err := r.Sim.RunFor(opts.withDefaults().Duration); err != nil {
		return FedChaosResult{}, err
	}
	res := FedChaosResult{
		Name:         name,
		Title:        spec.title,
		Offered:      r.count,
		Stats:        r.Fed.Stats(),
		Gain:         r.Fed.Gain(),
		ClusterGains: r.Fed.ClusterGains(),
		Clusters:     r.Fed.ClusterInfos(),
		Steps:        env.Log(),
	}
	if a := r.Fed.Auditor(); a != nil {
		st := a.Stats()
		res.AuditStats.Sweeps += st.Sweeps
		res.AuditStats.Events += st.Events
		res.AuditStats.Violations += st.Violations
		res.Violations = append(res.Violations, a.Violations()...)
	}
	for _, name := range r.Fed.Clusters() {
		c, _ := r.Fed.Cluster(name)
		if a := c.Orchestrator().Auditor(); a != nil {
			st := a.Stats()
			res.AuditStats.Sweeps += st.Sweeps
			res.AuditStats.Events += st.Events
			res.AuditStats.Violations += st.Violations
			res.Violations = append(res.Violations, a.Violations()...)
		}
	}
	return res, nil
}
