package scenario

import (
	"testing"
)

// TestMECScenario drives the D7 pluggable-domain experiment: the MEC pool
// must actually bind (typed mec-capacity rejections), live slices must hold
// placed apps, and the pool must never leak beyond its capacity.
func TestMECScenario(t *testing.T) {
	res, err := MECScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Gain.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if res.MECRejections == 0 {
		t.Fatalf("no mec-capacity rejections; histogram %v", res.Result.Gain.RejectReasons)
	}
	if res.MECUtilization < 0 || res.MECUtilization > 1 {
		t.Fatalf("MEC utilization %g out of range", res.MECUtilization)
	}
	// Every live (installing/active/reconfiguring) slice holds an edge app;
	// finished slices hold none.
	live := 0
	for _, sn := range res.Result.Slices {
		switch sn.State {
		case "installing", "active", "reconfiguring":
			live++
			if sn.Allocation.MECAppID == "" {
				t.Fatalf("live slice %s has no MEC app", sn.ID)
			}
		}
	}
	if res.PlacedApps != live {
		t.Fatalf("%d apps placed, %d live slices", res.PlacedApps, live)
	}
	// Deterministic: same seed, same outcome.
	again, err := MECScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	if again.Result.Gain.Admitted != res.Result.Gain.Admitted ||
		again.Result.Gain.Rejected != res.Result.Gain.Rejected ||
		again.MECRejections != res.MECRejections ||
		again.Result.NetRevenueEUR != res.Result.NetRevenueEUR {
		t.Fatalf("MEC scenario not deterministic:\n%+v\n%+v", res, again)
	}
}
