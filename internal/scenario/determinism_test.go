package scenario

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
)

// TestFixedSeedScenarioGolden pins an overloaded fixed-seed run to golden
// outcome numbers recorded on the pre-refactor (hand-rolled three-domain
// install) engine. The generic domain-transaction engine must reproduce
// them byte-for-byte: the refactor — like the shard count — changes
// contention and structure, never outcomes. If this test fails after an
// intentional behavior change, re-record the constants in the same commit
// and say why.
func TestFixedSeedScenarioGolden(t *testing.T) {
	res, err := Run(Options{
		Seed:             42,
		Duration:         8 * time.Hour,
		MeanInterarrival: 5 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Gain
	intChecks := map[string][2]int{
		"offered":          {res.Offered, 104},
		"admitted":         {g.Admitted, 22},
		"rejected":         {g.Rejected, 82},
		"active":           {g.Active, 6},
		"violation_epochs": {g.ViolationEpochs, 401},
		"reconfigurations": {g.Reconfigurations, 868},
		"epochs":           {g.Epochs, 480},
		"served_epochs":    {res.ServedEpochs, 2727},
		"attached_ues":     {res.AttachedUEs, 66},
		"plmn-exhausted":   {g.RejectReasons["plmn-exhausted"], 65},
		"radio-capacity":   {g.RejectReasons["radio-capacity"], 17},
	}
	for name, c := range intChecks {
		if c[0] != c[1] {
			t.Errorf("%s = %d, want golden %d", name, c[0], c[1])
		}
	}
	if n := len(g.RejectReasons); n != 2 {
		t.Errorf("histogram has %d buckets %v, want the 2 golden typed codes", n, g.RejectReasons)
	}
	floatChecks := map[string][2]float64{
		"revenue_eur": {g.RevenueTotalEUR, 1978.3629373013005},
		"penalty_eur": {g.PenaltyTotalEUR, 1060},
		"net_eur":     {g.NetRevenueEUR, 918.3629373013005},
	}
	for name, c := range floatChecks {
		if math.Abs(c[0]-c[1]) > 1e-6 {
			t.Errorf("%s = %.10f, want golden %.10f", name, c[0], c[1])
		}
	}
}

// TestEpochPipelineShardEquivalence is the equivalence proof for the
// phase-pipelined epoch engine: a fixed-seed scenario run on the Shards=1
// serial path and on the Shards=16 pipelined path (parallel per-shard
// analysis workers) must produce identical slice outcomes, identical
// telemetry series — every sample of every series, bit for bit — and an
// identical GainReport. Shard count, like before the pipeline, changes
// contention only, never outcomes: all RNG draws happen in the epoch's
// serial head, every order-sensitive mutation (domain resizes, ledger and
// money float additions, event publication) commits in submission order,
// and the parallel phase computes only per-slice values.
func TestEpochPipelineShardEquivalence(t *testing.T) {
	type outcome struct {
		res    Result
		series map[string][]monitor.Sample
	}
	run := func(shards int) outcome {
		r, err := NewRunner(Options{
			Seed:             42,
			Duration:         3 * time.Hour,
			MeanInterarrival: 5 * time.Minute,
			Orchestrator: core.Config{
				Overbook: true, Risk: 0.9, PLMNLimit: 64, Shards: shards,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.StartArrivals()
		if err := r.Sim.RunFor(3 * time.Hour); err != nil {
			t.Fatal(err)
		}
		out := outcome{res: r.Collect(), series: map[string][]monitor.Sample{}}
		store := r.Orch.Store()
		for _, name := range store.Names() {
			out.series[name] = store.Series(name).Window(0)
		}
		return out
	}
	serial, pipelined := run(1), run(16)

	if !reflect.DeepEqual(serial.res.Gain, pipelined.res.Gain) {
		t.Errorf("gain report diverged:\n serial:    %+v\n pipelined: %+v", serial.res.Gain, pipelined.res.Gain)
	}
	if !reflect.DeepEqual(serial.res.Slices, pipelined.res.Slices) {
		t.Errorf("slice outcomes diverged (%d vs %d snapshots)", len(serial.res.Slices), len(pipelined.res.Slices))
	}
	if serial.res.Offered != pipelined.res.Offered || serial.res.AttachedUEs != pipelined.res.AttachedUEs {
		t.Errorf("workload diverged: offered %d/%d, attached %d/%d",
			serial.res.Offered, pipelined.res.Offered, serial.res.AttachedUEs, pipelined.res.AttachedUEs)
	}
	if len(serial.series) != len(pipelined.series) {
		t.Fatalf("series sets diverged: %d vs %d", len(serial.series), len(pipelined.series))
	}
	for name, want := range serial.series {
		got, ok := pipelined.series[name]
		if !ok {
			t.Errorf("series %q missing from the pipelined run", name)
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("series %q diverged (%d vs %d samples)", name, len(want), len(got))
		}
	}
}
