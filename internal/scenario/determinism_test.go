package scenario

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// TestFixedSeedScenarioGolden pins an overloaded fixed-seed run to golden
// outcome numbers recorded on the pre-refactor (hand-rolled three-domain
// install) engine. The generic domain-transaction engine must reproduce
// them byte-for-byte: the refactor — like the shard count — changes
// contention and structure, never outcomes. If this test fails after an
// intentional behavior change, re-record the constants in the same commit
// and say why.
func TestFixedSeedScenarioGolden(t *testing.T) {
	res, err := Run(Options{
		Seed:             42,
		Duration:         8 * time.Hour,
		MeanInterarrival: 5 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Gain
	intChecks := map[string][2]int{
		"offered":          {res.Offered, 104},
		"admitted":         {g.Admitted, 22},
		"rejected":         {g.Rejected, 82},
		"active":           {g.Active, 6},
		"violation_epochs": {g.ViolationEpochs, 401},
		"reconfigurations": {g.Reconfigurations, 868},
		"epochs":           {g.Epochs, 480},
		"served_epochs":    {res.ServedEpochs, 2727},
		"attached_ues":     {res.AttachedUEs, 66},
		"plmn-exhausted":   {g.RejectReasons["plmn-exhausted"], 65},
		"radio-capacity":   {g.RejectReasons["radio-capacity"], 17},
	}
	for name, c := range intChecks {
		if c[0] != c[1] {
			t.Errorf("%s = %d, want golden %d", name, c[0], c[1])
		}
	}
	if n := len(g.RejectReasons); n != 2 {
		t.Errorf("histogram has %d buckets %v, want the 2 golden typed codes", n, g.RejectReasons)
	}
	floatChecks := map[string][2]float64{
		"revenue_eur": {g.RevenueTotalEUR, 1978.3629373013005},
		"penalty_eur": {g.PenaltyTotalEUR, 1060},
		"net_eur":     {g.NetRevenueEUR, 918.3629373013005},
	}
	for name, c := range floatChecks {
		if math.Abs(c[0]-c[1]) > 1e-6 {
			t.Errorf("%s = %.10f, want golden %.10f", name, c[0], c[1])
		}
	}
}
