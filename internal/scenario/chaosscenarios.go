package scenario

// The canned chaos scenarios C1–C6: scripted failure timelines
// (internal/chaos) run against the standard workload with the cross-domain
// invariant auditor (internal/invariant) always on. Each scenario is a
// verification artifact first and an experiment second — the chaos suite in
// CI runs all six under -race and fails on any invariant violation, making
// scenario diversity itself the regression net every scaling PR runs
// against (DESIGN.md §8).

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/forecast"
	"repro/internal/invariant"
	"repro/internal/testbed"
)

// ChaosResult condenses one chaos scenario run.
type ChaosResult struct {
	// Name is the scenario key ("c1".."c6"); Title the human description.
	Name  string `json:"name"`
	Title string `json:"title"`
	// Result is the standard workload summary.
	Result Result `json:"result"`
	// Steps lists the timeline steps that fired, in execution order.
	Steps []chaos.FiredStep `json:"steps"`
	// AuditStats proves how much the invariant auditor checked.
	AuditStats invariant.Stats `json:"audit_stats"`
	// Violations is every invariant breach detected (empty == proof the
	// run kept the books exact).
	Violations []invariant.Violation `json:"violations"`
}

// chaosSpec couples a scenario's options with its timeline builder.
type chaosSpec struct {
	title    string
	opts     func(seed int64) Options
	timeline func(seed int64) *chaos.Timeline
}

// chaosBaseOptions is the shared chassis: overloaded arrivals, overbooking
// on, audit on.
func chaosBaseOptions(seed int64, dur time.Duration, ia time.Duration) Options {
	return Options{
		Seed:             seed,
		Duration:         dur,
		MeanInterarrival: ia,
		Orchestrator: core.Config{
			Overbook:  true,
			Risk:      0.9,
			PLMNLimit: 64,
			Audit:     true,
		},
		Testbed: testbed.Config{MaxPLMNs: 64, RedundantTransport: true},
	}
}

// chaosSpecs defines C1–C6.
var chaosSpecs = map[string]chaosSpec{
	"c1": {
		title: "flash-crowd: demand spikes on half the tenants mid-run",
		opts: func(seed int64) Options {
			return chaosBaseOptions(seed, 4*time.Hour, 5*time.Minute)
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				At(1*time.Hour, "crowd-50pct", chaos.FlashCrowd(0.5, 60, 30*time.Minute)).
				At(150*time.Minute, "crowd-80pct", chaos.FlashCrowd(0.8, 100, 30*time.Minute))
		},
	},
	"c2": {
		title: "rolling-link-failure: wireless hops fail, degrade and repair mid-epoch",
		opts: func(seed int64) Options {
			return chaosBaseOptions(seed, 4*time.Hour, 5*time.Minute)
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				At(60*time.Minute, "fail-enb1-uplink", chaos.LinkFail(testbed.ENBName(0), testbed.Switch)).
				At(80*time.Minute, "repair-enb1-uplink", chaos.LinkRestore(testbed.ENBName(0), testbed.Switch)).
				At(100*time.Minute, "fail-enb2-uplink", chaos.LinkFail(testbed.ENBName(1), testbed.Switch)).
				At(120*time.Minute, "repair-enb2-uplink", chaos.LinkRestore(testbed.ENBName(1), testbed.Switch)).
				At(140*time.Minute, "rain-fade-enb1", chaos.LinkDegrade(testbed.ENBName(0), testbed.Switch, 120)).
				At(170*time.Minute, "rain-clears-enb1", chaos.LinkDegrade(testbed.ENBName(0), testbed.Switch, 1000)).
				At(190*time.Minute, "fade-cell-2", chaos.CellFade(1, 7)).
				At(210*time.Minute, "cell-2-recovers", chaos.CellFade(1, 12))
		},
	},
	"c3": {
		title: "squeeze-storm: overload bursts force repeated whole-registry squeezes under mispredicting forecasts",
		opts: func(seed int64) Options {
			o := chaosBaseOptions(seed, 4*time.Hour, 2*time.Minute)
			o.Orchestrator.Risk = 0.75
			// Forecaster misprediction injection: every 4th forecast comes
			// in 40% low, so provisioning under-shoots and the squeeze +
			// violation machinery works overtime.
			o.Orchestrator.NewForecaster = chaos.MispredictFactory(
				func() forecast.Forecaster { return forecast.NewEWMA(0.3) }, 4, 0.6)
			return o
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				Every(30*time.Minute, 30*time.Minute, 6, "burst", chaos.BurstSubmit(10))
		},
	},
	"c4": {
		title: "MEC-brownout: edge compute hosts lose capacity, then recover",
		opts: func(seed int64) Options {
			o := chaosBaseOptions(seed, 4*time.Hour, 4*time.Minute)
			o.Testbed.MECHosts = 2
			o.Testbed.MECHostCPUs = 12
			return o
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				At(60*time.Minute, "brownout-h1", chaos.MECBrownout(0, 1)).
				At(90*time.Minute, "brownout-h2", chaos.MECBrownout(1, 1)).
				At(150*time.Minute, "recover-h1", chaos.MECRecover(0, 12)).
				At(160*time.Minute, "recover-h2", chaos.MECRecover(1, 12))
		},
	},
	"c5": {
		title: "commit-fault-soak: rotating reserve/commit/resize faults across all four domains",
		opts: func(seed int64) Options {
			o := chaosBaseOptions(seed, 4*time.Hour, 4*time.Minute)
			o.Testbed.MECHosts = 1
			o.Testbed.MECHostCPUs = 64
			return o
		},
		timeline: func(seed int64) *chaos.Timeline {
			t := chaos.NewTimeline(seed)
			domains := []string{"ran", "transport", "cloud", "mec"}
			for i, d := range domains {
				base := time.Duration(30+40*i) * time.Minute
				t.At(base, "arm-"+d+"-commit", chaos.InjectFault(d, ctrl.FaultCommit, 3)).
					At(base+10*time.Minute, "arm-"+d+"-reserve", chaos.InjectFault(d, ctrl.FaultReserve, 2)).
					At(base+20*time.Minute, "arm-"+d+"-resize", chaos.InjectFault(d, ctrl.FaultResize, 4)).
					At(base+30*time.Minute, "clear-"+d, chaos.ClearFaults(d))
			}
			return t
		},
	},
	"c6": {
		title: "churn-soak: sustained burst-submit/mass-delete churn for six hours",
		opts: func(seed int64) Options {
			return chaosBaseOptions(seed, 6*time.Hour, 3*time.Minute)
		},
		timeline: func(seed int64) *chaos.Timeline {
			return chaos.NewTimeline(seed).
				Every(30*time.Minute, 30*time.Minute, 11, "delete-wave", chaos.MassDelete(0.4)).
				Every(45*time.Minute, 30*time.Minute, 10, "submit-wave", chaos.BurstSubmit(8))
		},
	},
}

// ChaosNames lists the canned scenarios in order.
func ChaosNames() []string {
	names := make([]string, 0, len(chaosSpecs))
	for n := range chaosSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ChaosTitle returns the scenario's human description.
func ChaosTitle(name string) string { return chaosSpecs[name].title }

// ChaosScenario runs one canned chaos scenario (c1..c6) with the invariant
// auditor attached and returns the workload summary plus the audit verdict.
// The run is deterministic from the seed: the timeline's randomness is
// seeded separately from the workload's, and neither depends on the shard
// count.
func ChaosScenario(name string, seed int64) (ChaosResult, error) {
	return ChaosScenarioSharded(name, seed, 0)
}

// ChaosScenarioSharded is ChaosScenario with an explicit shard count (0 =
// default) — the handle the shard-equivalence proof uses.
func ChaosScenarioSharded(name string, seed int64, shards int) (ChaosResult, error) {
	return ChaosScenarioCustom(name, seed, shards, nil, nil)
}

// ChaosScenarioCustom runs a canned chaos scenario with two optional hooks:
// mutate edits the spec's Options after its defaults are applied (the
// crash-recovery harness attaches its persistence sink and snapshot cadence
// here, and can copy the final Options out for its replay runs), and ready
// sees the built Runner before the timeline is installed and arrivals start
// (the harness binds its sink's digest probe to r.Orch there). Either hook
// may be nil.
func ChaosScenarioCustom(name string, seed int64, shards int, mutate func(*Options), ready func(*Runner)) (ChaosResult, error) {
	spec, ok := chaosSpecs[name]
	if !ok {
		return ChaosResult{}, fmt.Errorf("scenario: unknown chaos scenario %q (have %v)", name, ChaosNames())
	}
	opts := spec.opts(seed)
	if shards > 0 {
		opts.Orchestrator.Shards = shards
	}
	if mutate != nil {
		mutate(&opts)
	}
	r, err := NewRunner(opts)
	if err != nil {
		return ChaosResult{}, err
	}
	if ready != nil {
		ready(r)
	}
	env := &chaos.Env{
		Sim:    r.Sim,
		Orch:   r.Orch,
		TB:     r.TB,
		Submit: func() { _, _ = r.SubmitNow() },
	}
	spec.timeline(opts.Seed).Install(env)
	r.StartArrivals()
	if err := r.Sim.RunFor(opts.Duration); err != nil {
		return ChaosResult{}, err
	}
	res := ChaosResult{
		Name:   name,
		Title:  spec.title,
		Result: r.Collect(),
		Steps:  env.Log(),
	}
	if a := r.Orch.Auditor(); a != nil {
		res.AuditStats = a.Stats()
		res.Violations = a.Violations()
	}
	return res, nil
}
