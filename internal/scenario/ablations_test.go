package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestSchedulerSharingAblationReducesViolations(t *testing.T) {
	rows, err := SchedulerSharingAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	noShare, share := rows[0], rows[1]
	if share.ViolationRate > noShare.ViolationRate {
		t.Fatalf("sharing increased violations: %.4f vs %.4f", share.ViolationRate, noShare.ViolationRate)
	}
	if noShare.ViolationRate == 0 {
		t.Fatal("baseline produced no violations — ablation not exercising the mechanism")
	}
}

func TestForecasterAblationAllVariantsRun(t *testing.T) {
	rows, err := ForecasterAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Admitted == 0 {
			t.Fatalf("variant %s admitted nothing", r.Variant)
		}
		if r.MultiplexingGain <= 1.0 {
			t.Fatalf("variant %s gain %.2f", r.Variant, r.MultiplexingGain)
		}
	}
}

func TestHysteresisAblationTradeoff(t *testing.T) {
	rows, err := HysteresisAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// Reconfiguration churn must fall monotonically as the threshold grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Reconfigurations > rows[i-1].Reconfigurations {
			t.Fatalf("reconfigurations not decreasing: %+v", rows)
		}
	}
	if rows[0].Reconfigurations == rows[len(rows)-1].Reconfigurations {
		t.Fatal("threshold had no effect on churn")
	}
}

func TestPenaltyAwareAblationProtectsNetRevenue(t *testing.T) {
	rows, err := PenaltyAwareAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// rows: [plain r=0.95, plain r=0.75, aware r=0.95, aware r=0.75]
	plainAggressive, awareAggressive := rows[1], rows[3]
	if awareAggressive.NetEUR <= plainAggressive.NetEUR {
		t.Fatalf("penalty-aware net %.0f not above plain %.0f at aggressive risk",
			awareAggressive.NetEUR, plainAggressive.NetEUR)
	}
}

func TestUEsAttachDuringScenario(t *testing.T) {
	res, err := Run(Options{
		Seed:             4,
		Duration:         3 * time.Hour,
		MeanInterarrival: 20 * time.Minute,
		Orchestrator:     core.Config{Overbook: true, PLMNLimit: 32},
		UEsPerSlice:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttachedUEs < 2 {
		t.Fatalf("attached UEs %d", res.AttachedUEs)
	}
	if res.AttachedUEs > res.Gain.Admitted*2 {
		t.Fatalf("attached %d exceeds 2 per admitted slice (%d)", res.AttachedUEs, res.Gain.Admitted)
	}
}

func TestBatchPolicyComparisonOrdering(t *testing.T) {
	rows, err := BatchPolicyComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]BatchRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	fcfs, dens, opt := byName["fcfs"], byName["density"], byName["knapsack-optimal"]
	if !(opt.RevenueEUR >= dens.RevenueEUR && dens.RevenueEUR >= fcfs.RevenueEUR) {
		t.Fatalf("revenue ordering violated: fcfs=%.0f density=%.0f optimal=%.0f",
			fcfs.RevenueEUR, dens.RevenueEUR, opt.RevenueEUR)
	}
	if opt.RevenueEUR == fcfs.RevenueEUR {
		t.Fatal("batch not adversarial enough — optimal equals FCFS")
	}
}

func TestRestorationExperimentShape(t *testing.T) {
	rows, err := RestorationExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	hub, backup := rows[0], rows[1]
	if hub.Restored != 0 || hub.Dropped == 0 {
		t.Fatalf("hub topology should drop victims: %+v", hub)
	}
	if backup.Dropped != 0 || backup.Restored == 0 {
		t.Fatalf("backup topology should restore victims: %+v", backup)
	}
	if backup.ActiveAfter <= hub.ActiveAfter {
		t.Fatalf("backup kept %d active vs hub %d", backup.ActiveAfter, hub.ActiveAfter)
	}
}
