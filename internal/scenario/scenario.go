// Package scenario drives end-to-end simulations of the testbed under the
// orchestrator: slice requests arrive as a Poisson process over tenant
// profiles, admitted slices offer stochastic demand, the control loop
// overbooks, and the run's outcome is condensed into the metrics the demo
// dashboard displays. Every experiment in EXPERIMENTS.md is a thin
// parameterization of this runner.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/epc"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Options parameterizes one simulation run.
type Options struct {
	// Seed drives all randomness (arrivals, demand noise, radio channel).
	Seed int64
	// Duration is the simulated time span (default 6h).
	Duration time.Duration
	// WarmupRequests pre-submits this many requests at t=0 (default 0).
	WarmupRequests int
	// MeanInterarrival is the mean gap between slice requests
	// (default 15m). Smaller = higher offered load.
	MeanInterarrival time.Duration
	// Orchestrator configures the system under test.
	Orchestrator core.Config
	// Testbed scales the environment (zero = demo default).
	Testbed testbed.Config
	// Profiles are the tenant archetypes (default traffic.DefaultProfiles).
	Profiles []traffic.Profile
	// UEsPerSlice attaches this many user devices to each slice once its
	// vEPC is serving (default 3 — "user devices associated with the
	// PLMN-id of the new slices are allowed to connect").
	UEsPerSlice int
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 6 * time.Hour
	}
	if o.MeanInterarrival <= 0 {
		o.MeanInterarrival = 15 * time.Minute
	}
	if o.Profiles == nil {
		o.Profiles = traffic.DefaultProfiles()
	}
	if o.UEsPerSlice <= 0 {
		o.UEsPerSlice = 3
	}
	return o
}

// Result condenses one run.
type Result struct {
	// Offered is the number of slice requests generated.
	Offered int
	// Gain is the final dashboard report.
	Gain core.GainReport
	// AdmissionRate is admitted / offered.
	AdmissionRate float64
	// ServedEpochs / ViolationEpochs aggregate per-slice accounting over
	// all slices that ever ran.
	ServedEpochs    int
	ViolationEpochs int
	// ViolationRate is ViolationEpochs / ServedEpochs.
	ViolationRate float64
	// MeanMultiplexingGain / MeanOverbookingRatio average the epoch series.
	MeanMultiplexingGain float64
	MeanOverbookingRatio float64
	// MeanRANUtilization averages the per-epoch scheduled PRB utilization.
	MeanRANUtilization float64
	// MeanAllocatedMbps / MeanContractedMbps average the live totals.
	MeanAllocatedMbps  float64
	MeanContractedMbps float64
	// NetRevenueEUR = revenue - penalties at the end of the run.
	NetRevenueEUR float64
	// AttachedUEs counts user devices that completed the attach procedure.
	AttachedUEs int
	// Slices holds the final snapshots.
	Slices []slice.Snapshot
}

// Runner couples a simulator, a testbed and an orchestrator, letting
// callers interleave scripted actions with the background workload.
type Runner struct {
	Sim   *sim.Simulator
	TB    *testbed.Testbed
	Orch  *core.Orchestrator
	Gen   *traffic.RequestGenerator
	opts  Options
	count int

	attached int
	ueSeq    int
}

// NewRunner builds the environment (without starting arrivals).
func NewRunner(opts Options) (*Runner, error) {
	opts = opts.withDefaults()
	s := sim.NewSimulator(opts.Seed)
	tb, err := testbed.New(opts.Testbed, s.Rand())
	if err != nil {
		return nil, err
	}
	o := core.New(opts.Orchestrator, tb, s, monitor.NewStore(8192))
	gen := traffic.NewRequestGenerator(opts.Profiles, opts.MeanInterarrival, s.Rand())
	return &Runner{Sim: s, TB: tb, Orch: o, Gen: gen, opts: opts}, nil
}

// StartArrivals begins the Poisson request process and the control loop.
func (r *Runner) StartArrivals() {
	r.Orch.Start()
	var schedule func()
	schedule = func() {
		r.Sim.After(r.Gen.NextInterarrival(), "arrival", func() {
			g := r.Gen.Next(r.Sim.Now())
			r.count++
			if sl, err := r.Orch.Submit(g.Request, g.Demand); err == nil && sl.State() != slice.StateRejected {
				r.scheduleUEAttach(sl)
			}
			schedule()
		})
	}
	schedule()
}

// SubmitNow injects one generated request immediately.
func (r *Runner) SubmitNow() (*slice.Slice, error) {
	g := r.Gen.Next(r.Sim.Now())
	r.count++
	sl, err := r.Orch.Submit(g.Request, g.Demand)
	if err == nil && sl.State() != slice.StateRejected {
		r.scheduleUEAttach(sl)
	}
	return sl, err
}

// scheduleUEAttach attaches the configured UE population once the slice's
// vEPC is serving (the demo's "after few seconds, user devices ... are
// allowed to connect").
func (r *Runner) scheduleUEAttach(sl *slice.Slice) {
	n := r.opts.withDefaults().UEsPerSlice
	r.Sim.After(30*time.Second, string(sl.ID())+"/ue-attach", func() {
		if sl.State() != slice.StateActive {
			return
		}
		plmn := sl.Allocation().PLMN
		for i := 0; i < n; i++ {
			r.ueSeq++
			ue := epc.UE{IMSI: fmt.Sprintf("%s%s%010d", plmn.MCC, plmn.MNC, r.ueSeq), PLMN: plmn}
			if _, err := r.TB.Ctrl.Cloud.EPCs().Attach(ue, r.Sim.Now()); err == nil {
				r.attached++
			}
		}
	})
}

// AttachedUEs reports how many user devices successfully attached so far.
func (r *Runner) AttachedUEs() int { return r.attached }

// Offered returns the number of requests generated so far.
func (r *Runner) Offered() int { return r.count }

// Collect summarises the run so far.
func (r *Runner) Collect() Result {
	g := r.Orch.Gain()
	res := Result{
		Offered:       r.count,
		Gain:          g,
		NetRevenueEUR: g.NetRevenueEUR,
		AttachedUEs:   r.attached,
		Slices:        r.Orch.List(),
	}
	if res.Offered > 0 {
		res.AdmissionRate = float64(g.Admitted) / float64(res.Offered)
	}
	for _, sn := range res.Slices {
		res.ServedEpochs += sn.Accounting.ServedEpochs
		res.ViolationEpochs += sn.Accounting.ViolationEpochs
	}
	if res.ServedEpochs > 0 {
		res.ViolationRate = float64(res.ViolationEpochs) / float64(res.ServedEpochs)
	}
	store := r.Orch.Store()
	res.MeanMultiplexingGain = meanOf(store, "orchestrator/multiplexing_gain")
	res.MeanOverbookingRatio = meanOf(store, "orchestrator/overbooking_ratio")
	res.MeanRANUtilization = meanOf(store, "orchestrator/ran_epoch_utilization")
	res.MeanContractedMbps = res.MeanOverbookingRatio * g.CapacityMbps
	if res.MeanMultiplexingGain > 0 {
		res.MeanAllocatedMbps = res.MeanContractedMbps / res.MeanMultiplexingGain
	}
	return res
}

func meanOf(store *monitor.Store, name string) float64 {
	return store.Series(name).WindowStats(0).Mean
}

// Run executes a full scenario: warm-up submissions, Poisson arrivals, the
// control loop, and collection after opts.Duration of simulated time.
func Run(opts Options) (Result, error) {
	r, err := NewRunner(opts)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < opts.WarmupRequests; i++ {
		if _, err := r.SubmitNow(); err != nil {
			return Result{}, err
		}
	}
	r.StartArrivals()
	if err := r.Sim.RunFor(opts.withDefaults().Duration); err != nil {
		return Result{}, err
	}
	return r.Collect(), nil
}

// MustRun is Run panicking on error — for benches and examples where the
// options are known-good.
func MustRun(opts Options) Result {
	res, err := Run(opts)
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return res
}
