package scenario

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
)

// Ablations for the design decisions DESIGN.md §5 calls out: the in-
// scheduler PRB sharing, the forecaster powering the overbooking engine,
// the reconfiguration hysteresis, batch admission policies, and transport
// restoration.

// AblationRow is a generic (variant, metrics) row.
type AblationRow struct {
	Variant          string
	Admitted         int
	MultiplexingGain float64
	ViolationRate    float64
	Reconfigurations int
	NetEUR           float64
}

func ablationRun(seed int64, variant string, cfg core.Config) (AblationRow, error) {
	cfg.PLMNLimit = 64
	res, err := Run(Options{
		Seed:             seed,
		Duration:         12 * time.Hour,
		MeanInterarrival: 10 * time.Minute,
		Orchestrator:     cfg,
	})
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Variant:          variant,
		Admitted:         res.Gain.Admitted,
		MultiplexingGain: res.MeanMultiplexingGain,
		ViolationRate:    res.ViolationRate,
		Reconfigurations: res.Gain.Reconfigurations,
		NetEUR:           res.NetRevenueEUR,
	}, nil
}

// SchedulerSharingAblation (A1): does lending idle reserved PRBs to
// saturated slices within an epoch reduce SLA violations?
func SchedulerSharingAblation(seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, share := range []bool{false, true} {
		r, err := ablationRun(seed, fmt.Sprintf("share-unused=%v", share), core.Config{
			Overbook: true, Risk: 0.9, ShareUnusedPRBs: share,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// ForecasterAblation (A2): swap the forecaster inside the overbooking
// engine and measure the violation/gain outcome under identical load.
func ForecasterAblation(seed int64) ([]AblationRow, error) {
	variants := []struct {
		name string
		mk   func() forecast.Forecaster
	}{
		{"naive", func() forecast.Forecaster { return forecast.NewNaive() }},
		{"ma(8)", func() forecast.Forecaster { return forecast.NewMovingAverage(8) }},
		{"ewma(0.3)", func() forecast.Forecaster { return forecast.NewEWMA(0.3) }},
		{"holt(0.4,0.1)", func() forecast.Forecaster { return forecast.NewHolt(0.4, 0.1) }},
	}
	var rows []AblationRow
	for _, v := range variants {
		r, err := ablationRun(seed, v.name, core.Config{
			Overbook: true, Risk: 0.9, NewForecaster: v.mk,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// HysteresisAblation (A3): the reconfiguration threshold trades control
// churn (reconfigurations) against allocation freshness (violations).
func HysteresisAblation(seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, th := range []float64{0.01, 0.05, 0.15, 0.40} {
		r, err := ablationRun(seed, fmt.Sprintf("threshold=%.2f", th), core.Config{
			Overbook: true, Risk: 0.9, ReconfigThreshold: th,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// PenaltyAwareAblation (A4): at aggressive risk, plain admission accepts
// penalty-heavy slices that lose money; the penalty-aware policy rejects
// them up front and should keep net revenue from collapsing.
func PenaltyAwareAblation(seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	for _, pa := range []bool{false, true} {
		for _, risk := range []float64{0.95, 0.75} {
			r, err := ablationRun(seed, fmt.Sprintf("penalty-aware=%v risk=%.2f", pa, risk), core.Config{
				Overbook: true, Risk: risk, PenaltyAware: pa,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// BatchRow is one row of the batch-admission comparison.
type BatchRow struct {
	Policy     string
	Admitted   int
	RevenueEUR float64
}

// BatchPolicyComparison (D1b): a pending batch decided by FCFS, density
// order, and the exact knapsack — the [3] broker objective. Same batch,
// same capacity.
func BatchPolicyComparison(seed int64) ([]BatchRow, error) {
	mk := func(mbps, price float64) core.BatchItem {
		return core.BatchItem{Request: slice.Request{
			Tenant: "batch",
			SLA: slice.SLA{
				ThroughputMbps: mbps, MaxLatencyMs: 50,
				Duration: time.Hour, PriceEUR: price, PenaltyEUR: 1,
			},
		}}
	}
	batch := func() []core.BatchItem {
		return []core.BatchItem{
			mk(60, 60), mk(40, 90), mk(40, 85), mk(10, 40), mk(20, 55),
		}
	}
	var rows []BatchRow
	for _, pol := range []core.BatchPolicy{core.BatchFCFS, core.BatchDensity, core.BatchOptimal} {
		r, err := NewRunner(Options{
			Seed:         seed,
			Orchestrator: core.Config{Overbook: true, AdmissionLoadFactor: 1.0, PLMNLimit: 16},
		})
		if err != nil {
			return nil, err
		}
		if _, err := r.Orch.SubmitBatch(batch(), pol); err != nil {
			return nil, err
		}
		g := r.Orch.Gain()
		rows = append(rows, BatchRow{Policy: pol.String(), Admitted: g.Admitted, RevenueEUR: g.RevenueTotalEUR})
	}
	return rows, nil
}

// RestorationRow is one row of the link-failure experiment.
type RestorationRow struct {
	Topology string
	Restored int
	Dropped  int
	// ActiveAfter counts slices still active after the failure handling.
	ActiveAfter int
}

// RestorationExperiment (R1): fail the primary mmWave hop under both
// topologies; with the backup switch slices re-route, without it they are
// dropped.
func RestorationExperiment(seed int64) ([]RestorationRow, error) {
	run := func(redundant bool) (RestorationRow, error) {
		tbCfg := testbed.Default()
		tbCfg.RedundantTransport = redundant
		r, err := NewRunner(Options{
			Seed:         seed,
			Orchestrator: core.Config{Overbook: true, Risk: 0.9, PLMNLimit: 16},
			Testbed:      tbCfg,
		})
		if err != nil {
			return RestorationRow{}, err
		}
		r.Orch.Start()
		for i := 0; i < 4; i++ {
			if _, err := r.Orch.Submit(slice.Request{
				Tenant: fmt.Sprintf("victim-%d", i),
				SLA: slice.SLA{
					ThroughputMbps: 15, MaxLatencyMs: 50,
					Duration: 4 * time.Hour, PriceEUR: 50, PenaltyEUR: 1,
				},
			}, traffic.NewConstant(8, 0, nil)); err != nil {
				return RestorationRow{}, err
			}
		}
		if err := r.Sim.RunFor(20 * time.Minute); err != nil {
			return RestorationRow{}, err
		}
		rep, err := r.Orch.HandleLinkFailure(testbed.ENBName(0), testbed.Switch)
		if err != nil {
			return RestorationRow{}, err
		}
		name := "hub (demo Fig. 2)"
		if redundant {
			name = "hub + backup switch"
		}
		return RestorationRow{
			Topology:    name,
			Restored:    len(rep.Restored),
			Dropped:     len(rep.Dropped),
			ActiveAfter: r.Orch.ActiveCount(),
		}, nil
	}
	var rows []RestorationRow
	for _, redundant := range []bool{false, true} {
		row, err := run(redundant)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
