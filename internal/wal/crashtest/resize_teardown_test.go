package crashtest

// Regression tests for resize→teardown→crash interleavings: a WAL tail that
// resizes a slice and then tears it down must replay cleanly from every
// crash prefix inside the window, and a torn or hand-truncated image that
// replays a resize against a slice the snapshot no longer holds live must
// degrade to a skip — never abort recovery, never resurrect the ledger
// capacity the teardown released.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/scenario"
	"repro/internal/slice"
	"repro/internal/wal"
)

// slicedPayload extracts the slice ID shared by resize and teardown record
// payloads.
type slicedPayload struct {
	Slice slice.ID `json:"slice"`
}

// resizeTeardownPair is one (resize record, later teardown record of the
// same slice) occurrence; indices are record counts into the reference log.
type resizeTeardownPair struct {
	id            slice.ID
	resize, death int // 1-based record prefix lengths (crash "after record")
}

// findPairs scans a reference log for every slice whose teardown is
// preceded by at least one resize, keeping the last resize before the
// teardown (the tightest window — the interleavings between them are the
// ones the recovery path must survive).
func findPairs(t *testing.T, ref *Reference) []resizeTeardownPair {
	t.Helper()
	lastResize := make(map[slice.ID]int)
	var pairs []resizeTeardownPair
	for i, rec := range ref.Sink.Records {
		switch rec.Type {
		case "resize":
			var p slicedPayload
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				t.Fatalf("record %d: %v", i+1, err)
			}
			lastResize[p.Slice] = i + 1
		case "teardown":
			var p slicedPayload
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				t.Fatalf("record %d: %v", i+1, err)
			}
			if r, ok := lastResize[p.Slice]; ok {
				pairs = append(pairs, resizeTeardownPair{id: p.Slice, resize: r, death: i + 1})
			}
		}
	}
	return pairs
}

// referenceWithPairs runs chaos scenarios until one yields resize→teardown
// windows (C2's failure/degradation churn reliably does).
func referenceWithPairs(t *testing.T) (*Reference, []resizeTeardownPair) {
	t.Helper()
	for _, name := range scenario.ChaosNames() {
		ref, err := RunReference(name, 7, 4)
		if err != nil {
			t.Fatalf("reference run %s: %v", name, err)
		}
		if pairs := findPairs(t, ref); len(pairs) > 0 {
			t.Logf("%s: %d records, %d resize→teardown windows", name, len(ref.Sink.Records), len(pairs))
			return ref, pairs
		}
	}
	t.Fatal("no chaos scenario produced a resize→teardown window")
	return nil, nil
}

// TestResizeTeardownCrashWindows crashes at every prefix inside every
// resize→teardown window — resize durable but teardown not, both durable,
// and every interleaved record in between — and requires recovery to
// succeed, pass a full invariant sweep, and reproduce the reference digest
// at commit boundaries.
func TestResizeTeardownCrashWindows(t *testing.T) {
	ref, pairs := referenceWithPairs(t)
	boundary := make(map[int]*Boundary)
	for i := range ref.Sink.Boundaries {
		b := &ref.Sink.Boundaries[i]
		boundary[b.Records] = b
	}

	// Collect every crash point inside any window, deduplicated; the point
	// just before the resize rides along as the baseline interleaving.
	points := map[int]bool{}
	for _, p := range pairs {
		for n := p.resize - 1; n <= p.death; n++ {
			if n >= 1 {
				points[n] = true
			}
		}
	}
	ordered := make([]int, 0, len(points))
	for n := range points {
		ordered = append(ordered, n)
	}
	sortInts(ordered)
	cap := 400
	if testing.Short() {
		cap = 60
	}
	ordered = stride(ordered, cap)

	var atBoundary, midOp int
	for _, n := range ordered {
		o, rep, err := ref.Recover(n)
		if err != nil {
			t.Fatalf("crash after %d records: recover: %v", n, err)
		}
		if rep.LastSeq != uint64(n) {
			t.Fatalf("crash after %d records: recovered LastSeq %d", n, rep.LastSeq)
		}
		o.AuditSweep()
		if v := o.Auditor().Violations(); len(v) != 0 {
			t.Fatalf("crash after %d records: %d violations, first: %+v", n, len(v), v[0])
		}
		if b, ok := boundary[n]; ok {
			atBoundary++
			if got := o.StateDigest(); !bytes.Equal(got, b.Digest) {
				t.Fatalf("crash at boundary (%d records): digest diverged\nreference: %s\nrecovered: %s",
					n, b.Digest, got)
			}
		} else {
			midOp++
		}
	}
	if midOp == 0 {
		t.Fatal("no mid-operation crash point inside any resize→teardown window")
	}
	t.Logf("verified %d crash points in %d windows (%d at boundaries, %d mid-operation)",
		len(ordered), len(pairs), atBoundary, midOp)
}

// TestResizeReplayAgainstDeletedSlice exercises the degraded path directly:
// a hand-truncated image whose checkpoint post-dates a slice's teardown but
// whose tail still carries an old resize of that slice. Replay must skip
// the resize — no error — and the recovered state must be bit-identical to
// recovering the checkpoint alone: the teardown's released ledger capacity
// must not come back.
func TestResizeReplayAgainstDeletedSlice(t *testing.T) {
	ref, pairs := referenceWithPairs(t)

	// A snapshot taken after a pair's teardown: its restored registry no
	// longer holds the slice live.
	var (
		pair resizeTeardownPair
		snap *Snap
	)
	for _, p := range pairs {
		for i := range ref.Sink.Snapshots {
			sn := &ref.Sink.Snapshots[i]
			if sn.Records >= p.death {
				pair, snap = p, sn
				break
			}
		}
		if snap != nil {
			break
		}
	}
	if snap == nil {
		t.Skip("no checkpoint after any resize→teardown window (raise scenario duration)")
	}

	resizeRec := ref.Sink.Records[pair.resize-1]
	if resizeRec.Type != "resize" {
		t.Fatalf("record %d is %q, want resize", pair.resize, resizeRec.Type)
	}

	// Clean recovery: the checkpoint with an empty tail.
	clean, _, err := recoverImage(ref, &wal.Recovered{
		SnapshotSeq: snap.Seq, Snapshot: snap.Blob, LastSeq: snap.Seq,
	})
	if err != nil {
		t.Fatalf("clean recovery: %v", err)
	}

	// Torn recovery: same checkpoint plus the stale resize in the tail.
	torn, rep, err := recoverImage(ref, &wal.Recovered{
		SnapshotSeq: snap.Seq, Snapshot: snap.Blob, LastSeq: snap.Seq,
		Records: []wal.Record{resizeRec},
	})
	if err != nil {
		t.Fatalf("stale resize of %s (record %d) against checkpoint at %d aborted recovery: %v",
			pair.id, pair.resize, snap.Records, err)
	}
	if rep.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the skipped resize)", rep.Replayed)
	}

	torn.AuditSweep()
	if v := torn.Auditor().Violations(); len(v) != 0 {
		t.Fatalf("torn recovery fails audit: %d violations, first: %+v", len(v), v[0])
	}
	// Bit-identical to the checkpoint alone — the digest covers the ledger
	// float bits, so any resurrected capacity from the skipped resize would
	// show up here.
	if c, g := clean.StateDigest(), torn.StateDigest(); !bytes.Equal(c, g) {
		t.Fatalf("stale resize mutated recovered state:\ncheckpoint only: %s\nwith stale resize: %s", c, g)
	}
}

// TestTeardownWithoutPriorResizeStillExact guards the boundary digests of
// the plain teardown path too: crashing exactly at each teardown-bearing
// commit boundary must reproduce the reference digest (capacity released
// exactly once, bit-for-bit).
func TestTeardownWithoutPriorResizeStillExact(t *testing.T) {
	ref, _ := referenceWithPairs(t)
	checked := 0
	for _, b := range ref.Sink.Boundaries {
		if b.Records == 0 || b.Digest == nil {
			continue
		}
		if ref.Sink.Records[b.Records-1].Type != "teardown" {
			continue
		}
		o, _, err := ref.Recover(b.Records)
		if err != nil {
			t.Fatalf("recover at teardown boundary %d: %v", b.Records, err)
		}
		if got := o.StateDigest(); !bytes.Equal(got, b.Digest) {
			t.Fatalf("teardown boundary %d: digest diverged", b.Records)
		}
		checked++
		if checked >= 20 && testing.Short() {
			break
		}
	}
	if checked == 0 {
		t.Skip("no commit boundary lands exactly on a teardown record")
	}
	t.Logf("verified %d teardown-tail boundaries", checked)
}
