// Package crashtest proves the deterministic crash-recovery contract
// (DESIGN.md §9) by brute force: it runs the canned chaos scenarios C1–C6
// with an in-memory persistence sink that remembers every WAL record, every
// commit (fsync) boundary with a state digest taken at that instant, and
// every checkpoint snapshot — then simulates a crash after every record
// prefix, recovers an orchestrator from the captured image onto a fresh
// testbed, and checks the outcome:
//
//   - at a commit boundary the recovered state digest (gain report, slice
//     registry, epoch snapshot, ledger float bits, event sequence) must be
//     bit-identical to the uncrashed run's digest at that boundary;
//   - at any other prefix — a crash inside the fsync window, where part of
//     an operation's records reached the disk — recovery must still
//     succeed and the cross-domain invariant auditor's full sweep must
//     come back clean.
//
// The harness lives next to the WAL because it is the log's acceptance
// test: the scenarios and orchestrator are the workload, the log format and
// replay are the subject.
package crashtest

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/wal"
)

// Boundary marks one commit (fsync) boundary of the reference run.
type Boundary struct {
	// Records is how many records had been appended when the boundary hit.
	Records int
	// Digest is the orchestrator's state digest at the boundary.
	Digest []byte
}

// Snap is one captured checkpoint snapshot.
type Snap struct {
	// Records is how many records had been appended when the snapshot was
	// taken (snapshots anchor at the current WAL sequence, so this equals
	// the anchor for a contiguous log).
	Records int
	Seq     uint64
	Blob    []byte
}

// Sink is the in-memory core.Sink of the reference run. Committed reads the
// orchestrator's state digest back through the Digest probe — legal only
// under a single-driver simulated clock (see core.Sink docs).
type Sink struct {
	mu sync.Mutex
	// Digest is bound to the orchestrator's StateDigest after construction
	// (the orchestrator does not exist yet when the sink is handed to its
	// config). Boundaries before binding carry a nil digest.
	Digest func() []byte

	Records    []wal.Record
	Boundaries []Boundary
	Snapshots  []Snap
}

// Append buffers one record.
func (s *Sink) Append(rec wal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if want := uint64(len(s.Records)) + 1; rec.Seq != want {
		return fmt.Errorf("crashtest: non-contiguous seq %d (want %d)", rec.Seq, want)
	}
	s.Records = append(s.Records, rec)
	return nil
}

// Committed marks a durability boundary and captures the state digest.
// Boundaries that flushed no new records are collapsed into the previous
// one — the state cannot have changed without a record.
func (s *Sink) Committed() error {
	var probe func() []byte
	s.mu.Lock()
	if n := len(s.Boundaries); n > 0 && s.Boundaries[n-1].Records == len(s.Records) {
		s.mu.Unlock()
		return nil
	}
	probe = s.Digest
	s.mu.Unlock()
	// The digest probe re-enters the orchestrator (List, Gain, ...); take it
	// outside the sink lock.
	var d []byte
	if probe != nil {
		d = probe()
	}
	s.mu.Lock()
	s.Boundaries = append(s.Boundaries, Boundary{Records: len(s.Records), Digest: d})
	s.mu.Unlock()
	return nil
}

// Snapshot captures a checkpoint blob.
func (s *Sink) Snapshot(seq uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Snapshots = append(s.Snapshots, Snap{
		Records: len(s.Records),
		Seq:     seq,
		Blob:    append([]byte(nil), blob...),
	})
	return nil
}

// Reference is one uncrashed chaos-scenario run with its full persistence
// capture.
type Reference struct {
	Name   string
	Shards int
	Opts   scenario.Options
	Sink   *Sink
	Result scenario.ChaosResult
}

// snapshotEvery is the checkpoint cadence (control epochs) for harness runs:
// short enough that every scenario crosses several snapshot boundaries, so
// recovery is exercised from checkpoints of many vintages, not just from an
// empty log.
const snapshotEvery = 8

// RunReference executes one chaos scenario at the given shard count with the
// capturing sink attached.
func RunReference(name string, seed int64, shards int) (*Reference, error) {
	ref := &Reference{Name: name, Shards: shards, Sink: &Sink{}}
	res, err := scenario.ChaosScenarioCustom(name, seed, shards,
		func(o *scenario.Options) {
			o.Orchestrator.Persist = ref.Sink
			o.Orchestrator.SnapshotEvery = snapshotEvery
			ref.Opts = *o
		},
		func(r *scenario.Runner) {
			ref.Sink.Digest = r.Orch.StateDigest
		})
	if err != nil {
		return nil, err
	}
	ref.Result = res
	return ref, nil
}

// Image reconstructs the durable image a crash after the first n records
// would leave behind: the newest checkpoint covered by the prefix plus the
// record tail after its anchor.
func (ref *Reference) Image(n int) *wal.Recovered {
	rec := &wal.Recovered{LastSeq: uint64(n)}
	for _, sn := range ref.Sink.Snapshots {
		// A snapshot is durable the moment it was written (atomic rename in
		// the file-backed sink), independent of later commit boundaries.
		if sn.Records <= n {
			rec.SnapshotSeq = sn.Seq
			rec.Snapshot = sn.Blob
		}
	}
	rec.Records = ref.Sink.Records[int(rec.SnapshotSeq):n]
	return rec
}

// Recover rebuilds an orchestrator from the crash image after n records,
// onto a fresh default-environment testbed with the auditor attached, and
// returns it.
func (ref *Reference) Recover(n int) (*core.Orchestrator, *core.RecoveryReport, error) {
	return recoverImage(ref, ref.Image(n))
}

// recoverImage recovers an arbitrary durable image against the reference
// run's configuration on a fresh testbed.
func recoverImage(ref *Reference, img *wal.Recovered) (*core.Orchestrator, *core.RecoveryReport, error) {
	s := sim.NewSimulator(ref.Opts.Seed)
	tb, err := testbed.New(ref.Opts.Testbed, s.Rand())
	if err != nil {
		return nil, nil, err
	}
	cfg := ref.Opts.Orchestrator
	cfg.Persist = nil
	cfg.Audit = true
	cfg.AuditOnViolation = nil
	return core.RecoverFromWAL(cfg, tb, s, monitor.NewStore(256), img)
}

// CrashPoints selects which record-prefix lengths to test: every commit
// boundary and every snapshot anchor when there are at most max of them,
// an evenly strided subset (always keeping the first and the final
// boundary) otherwise. Returned values are record counts; IsBoundary tells
// digest-comparable points apart from mid-operation ones.
func (ref *Reference) CrashPoints(maxBoundaries, maxMidOp int) (points []int, boundary map[int]*Boundary) {
	boundary = make(map[int]*Boundary)
	for i := range ref.Sink.Boundaries {
		b := &ref.Sink.Boundaries[i]
		boundary[b.Records] = b
	}
	points = stride(keys(boundary), maxBoundaries)

	// Mid-operation points: prefixes that are not commit boundaries. Every
	// record index is a candidate; sample evenly.
	var mids []int
	for n := 1; n <= len(ref.Sink.Records); n++ {
		if _, ok := boundary[n]; !ok {
			mids = append(mids, n)
		}
	}
	points = append(points, stride(mids, maxMidOp)...)

	// Snapshot anchors ride along (deduplicated): crashing right at a
	// checkpoint write exercises recovery from the freshest snapshot with an
	// empty tail.
	seen := make(map[int]bool, len(points))
	for _, p := range points {
		seen[p] = true
	}
	for _, sn := range ref.Sink.Snapshots {
		if !seen[sn.Records] {
			seen[sn.Records] = true
			points = append(points, sn.Records)
		}
	}
	return points, boundary
}

// keys returns the map's keys in ascending order.
func keys(m map[int]*Boundary) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// stride picks at most max elements of a evenly, always keeping the first
// and last.
func stride(a []int, max int) []int {
	if len(a) <= max || max <= 0 {
		return append([]int(nil), a...)
	}
	if max == 1 {
		return []int{a[len(a)-1]}
	}
	out := make([]int, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, a[i*(len(a)-1)/(max-1)])
	}
	return out
}
