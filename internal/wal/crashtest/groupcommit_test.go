package crashtest

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/wal"
)

// TestGroupCommitRecoveryDurable is the crash-model acceptance test for the
// group-commit pipeline (DESIGN.md §12) on a real file-backed WAL under
// genuine concurrency — the regime the §9.2 single-driver harness cannot
// reach. Many goroutines submit concurrently; an operation counts as
// "acknowledged" only once Submit returns, i.e. once the fsync covering its
// records completed. The crash cut is taken mid-churn by first snapshotting
// the acknowledged set and then reading the live wal.log bytes — any file
// state read after an acknowledgement must already contain that operation's
// records, whatever group commit batched them with. Recovery from the cut
// (torn tail and all) must surface every acknowledged admission in a live
// state with the invariant auditor's full sweep clean.
func TestGroupCommitRecoveryDurable(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           4096,
		HistoryLimit:        1024,
		Shards:              8,
		Persist:             core.WALSink(w),
	}
	s := sim.NewSimulator(29)
	tb, err := testbed.New(testbed.Config{
		ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
		MECHosts: 2, MECHostCPUs: 32,
	}, s.Rand())
	if err != nil {
		t.Fatal(err)
	}
	o := core.New(cfg, tb, s, monitor.NewStore(1024))

	workers, iters := 8, 40
	if testing.Short() {
		workers, iters = 4, 12
	}
	var (
		mu        sync.Mutex
		acked     []slice.ID // admitted and acknowledged durable, in ack order
		processed atomic.Int64
		wg        sync.WaitGroup
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sl, err := o.Submit(slice.Request{
					Tenant: fmt.Sprintf("gc-%d-%d", g, i),
					SLA: slice.SLA{
						ThroughputMbps: 1, MaxLatencyMs: 50,
						Duration: time.Hour, PriceEUR: 10, PenaltyEUR: 1,
					},
				}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if sl.State() != slice.StateRejected {
					mu.Lock()
					acked = append(acked, sl.ID())
					mu.Unlock()
				}
				processed.Add(1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// cut snapshots the acknowledged set, then reads the live log — in that
	// order, so the bytes must cover every snapshotted acknowledgement.
	type cutImage struct {
		acked []slice.ID
		log   []byte
	}
	takeCut := func() cutImage {
		mu.Lock()
		ids := append([]slice.ID(nil), acked...)
		mu.Unlock()
		raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
		if err != nil && !os.IsNotExist(err) {
			t.Fatalf("read live log: %v", err)
		}
		return cutImage{acked: ids, log: raw}
	}

	// Several mid-churn cuts as operations complete, plus a final one after
	// full quiesce (which must cover everything).
	var cuts []cutImage
	for _, threshold := range []int{workers * iters / 8, workers * iters / 3} {
	wait:
		for processed.Load() < int64(threshold) {
			select {
			case <-done:
				break wait
			default:
				time.Sleep(200 * time.Microsecond)
			}
		}
		cuts = append(cuts, takeCut())
	}
	wg.Wait()
	st := o.PersistStatus()
	if st.Error != "" {
		t.Fatalf("persistence latched an error: %s", st.Error)
	}
	cuts = append(cuts, takeCut())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: %d admissions acked, %d records, %d commit ops, %d fsyncs, max group %d",
		len(cuts[len(cuts)-1].acked), st.LastSeq, st.CommitOps, st.Fsyncs, st.MaxGroup)

	for ci, cut := range cuts {
		if len(cut.acked) == 0 {
			t.Fatalf("cut %d degenerate: no acknowledged admissions", ci)
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "wal.log"), cut.log, 0o644); err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.Persist = nil
		rcfg.Audit = true
		rs := sim.NewSimulator(int64(31 + ci))
		rtb, err := testbed.New(testbed.Config{
			ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
			MECHosts: 2, MECHostCPUs: 32,
		}, rs.Rand())
		if err != nil {
			t.Fatal(err)
		}
		ro, rw, err := core.Recover(rcfg, rtb, rs, monitor.NewStore(1024), cdir)
		if err != nil {
			t.Fatalf("cut %d (%d acked, %d log bytes): recover: %v",
				ci, len(cut.acked), len(cut.log), err)
		}
		for _, id := range cut.acked {
			got, ok := ro.Get(id)
			if !ok {
				t.Fatalf("cut %d: acknowledged admission %s lost — its fsync group was not durable", ci, id)
			}
			if gst := got.State(); gst == slice.StateRejected || gst == slice.StateTerminated {
				t.Fatalf("cut %d: acknowledged admission %s recovered in state %v", ci, id, gst)
			}
		}
		ro.AuditSweep()
		if vs := ro.Auditor().Violations(); len(vs) != 0 {
			t.Fatalf("cut %d: recovered state fails audit (%d violations), first: %+v", ci, len(vs), vs[0])
		}
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
