package crashtest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/scenario"
)

// Crash-point caps per scenario/shard pairing. The full run kills at every
// record prefix — every commit boundary, every snapshot anchor and every
// mid-operation append (a crash inside the fsync window); -short strides
// the points down evenly. Frequent checkpoints keep each recovery's replay
// tail short, so even full enumeration stays in seconds.
func crashPointCaps() (maxBoundary, maxMidOp int) {
	if testing.Short() {
		return 40, 12
	}
	return 0, 0 // 0 = unlimited
}

// TestCrashRecoveryEquivalence is the acceptance test of the durability
// plane (DESIGN.md §9): for every chaos scenario C1–C6, at shard counts 1
// and 16, kill the run after every sampled WAL-record prefix and recover
// from the captured image onto a fresh testbed. At commit boundaries the
// recovered state digest must be bit-identical to the uncrashed run's; at
// mid-operation prefixes recovery must succeed and the invariant auditor's
// full sweep must come back clean.
func TestCrashRecoveryEquivalence(t *testing.T) {
	shardCounts := []int{1, 16}
	if testing.Short() {
		shardCounts = []int{1}
	}
	for _, name := range scenario.ChaosNames() {
		for _, shards := range shardCounts {
			name, shards := name, shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				t.Parallel()
				ref, err := RunReference(name, 42, shards)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				if n := len(ref.Result.Violations); n != 0 {
					t.Fatalf("reference run not invariant-clean: %d violations, first: %+v",
						n, ref.Result.Violations[0])
				}
				if len(ref.Sink.Records) == 0 || len(ref.Sink.Boundaries) == 0 {
					t.Fatalf("reference run persisted nothing (records=%d boundaries=%d)",
						len(ref.Sink.Records), len(ref.Sink.Boundaries))
				}
				if len(ref.Sink.Snapshots) == 0 {
					t.Fatalf("reference run took no checkpoint snapshot (SnapshotEvery=%d)", snapshotEvery)
				}

				points, boundary := ref.CrashPoints(crashPointCaps())
				var atBoundary, midOp int
				for _, n := range points {
					o, rep, err := ref.Recover(n)
					if err != nil {
						t.Fatalf("crash after %d records: recover: %v", n, err)
					}
					if rep.LastSeq != uint64(n) {
						t.Fatalf("crash after %d records: recovered LastSeq %d", n, rep.LastSeq)
					}
					o.AuditSweep()
					if v := o.Auditor().Violations(); len(v) != 0 {
						t.Fatalf("crash after %d records: recovered state fails audit (%d violations), first: %+v",
							n, len(v), v[0])
					}
					if b, ok := boundary[n]; ok {
						atBoundary++
						if b.Digest == nil {
							t.Fatalf("boundary at %d records has no reference digest", n)
						}
						if got := o.StateDigest(); !bytes.Equal(got, b.Digest) {
							t.Fatalf("crash at commit boundary (%d records): recovered digest diverged\nreference: %s\nrecovered: %s",
								n, b.Digest, got)
						}
					} else {
						midOp++
					}
				}
				if atBoundary == 0 || midOp == 0 {
					t.Fatalf("crash-point sampling degenerate: %d boundary, %d mid-op points", atBoundary, midOp)
				}
				t.Logf("%s shards=%d: %d records, %d boundaries, %d snapshots; verified %d boundary + %d mid-op crash points",
					name, shards, len(ref.Sink.Records), len(ref.Sink.Boundaries), len(ref.Sink.Snapshots), atBoundary, midOp)
			})
		}
	}
}

// TestRecoverAtEveryEpochAnchor recovers from each captured checkpoint with
// an empty tail and with the full tail to the end of the run, proving
// snapshots of every vintage are usable anchors.
func TestRecoverAtEveryEpochAnchor(t *testing.T) {
	ref, err := RunReference("c2", 7, 4)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	last := ref.Sink.Boundaries[len(ref.Sink.Boundaries)-1]
	final, refDigest := last.Records, last.Digest
	for _, sn := range ref.Sink.Snapshots {
		// Empty tail: the state at the snapshot anchor must be recoverable
		// and audit-clean.
		o, _, err := ref.Recover(sn.Records)
		if err != nil {
			t.Fatalf("recover at snapshot seq %d: %v", sn.Seq, err)
		}
		o.AuditSweep()
		if v := o.Auditor().Violations(); len(v) != 0 {
			t.Fatalf("recover at snapshot seq %d: %d violations, first: %+v", sn.Seq, len(v), v[0])
		}

		// Full tail from this anchor: must converge on the final digest.
		img := ref.Image(final)
		img.SnapshotSeq, img.Snapshot = sn.Seq, sn.Blob
		img.Records = ref.Sink.Records[int(sn.Seq):final]
		o2, _, err := recoverImage(ref, img)
		if err != nil {
			t.Fatalf("recover full tail from snapshot seq %d: %v", sn.Seq, err)
		}
		if got := o2.StateDigest(); !bytes.Equal(got, refDigest) {
			t.Fatalf("full tail from snapshot seq %d diverged from final digest", sn.Seq)
		}
	}
}
