package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func mustAppend(t *testing.T, w *Writer, seq uint64, typ string, payload string) {
	t.Helper()
	if err := w.Append(Record{Seq: seq, Type: typ, Payload: []byte(payload)}); err != nil {
		t.Fatalf("append %d: %v", seq, err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, "admit", `{"id":"s-1"}`)
	mustAppend(t, w, 2, "epoch", `{"n":1}`)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 3, "teardown", `{"id":"s-1"}`)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 0 || rec.Snapshot != nil {
		t.Fatalf("unexpected snapshot: seq=%d", rec.SnapshotSeq)
	}
	if len(rec.Records) != 3 || rec.LastSeq != 3 || rec.TornTail {
		t.Fatalf("got %d records, last %d, torn %v", len(rec.Records), rec.LastSeq, rec.TornTail)
	}
	if rec.Records[1].Type != "epoch" || string(rec.Records[1].Payload) != `{"n":1}` {
		t.Fatalf("record 2 mismatch: %+v", rec.Records[1])
	}
}

// TestStageSyncInterleavesAppends proves the group-commit split: records
// appended after StageSync detached the buffer are not written by the
// staged step, land in a fresh pending buffer, and a later step (or Sync)
// appends them after the staged batch — the byte stream stays in sequence
// order even though the steps ran long after their capture.
func TestStageSyncInterleavesAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, "admit", "a")
	mustAppend(t, w, 2, "admit", "b")
	step1 := w.StageSync()
	// Concurrent-in-spirit appends while the first flush is "in flight".
	mustAppend(t, w, 3, "admit", "c")
	mustAppend(t, w, 4, "teardown", "d")
	if err := step1(); err != nil {
		t.Fatal(err)
	}
	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.LastSeq != 2 {
		t.Fatalf("staged flush wrote %d records, last %d; want 2", len(rec.Records), rec.LastSeq)
	}
	step2 := w.StageSync()
	if err := step2(); err != nil {
		t.Fatal(err)
	}
	// An empty-buffer step is a pure durability barrier, not an error.
	if err := w.StageSync()(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 4 || rec.LastSeq != 4 || rec.TornTail {
		t.Fatalf("got %d records, last %d, torn %v; want 4 in order", len(rec.Records), rec.LastSeq, rec.TornTail)
	}
	for i, typ := range []string{"admit", "admit", "admit", "teardown"} {
		if rec.Records[i].Seq != uint64(i+1) || rec.Records[i].Type != typ {
			t.Fatalf("record %d out of order: %+v", i, rec.Records[i])
		}
	}
}

func TestAppendRejectsBadSeq(t *testing.T) {
	w, err := Create(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mustAppend(t, w, 1, "a", "")
	if err := w.Append(Record{Seq: 3, Type: "a"}); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("gap: got %v, want ErrBadSeq", err)
	}
	if err := w.Append(Record{Seq: 1, Type: "a"}); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("duplicate: got %v, want ErrBadSeq", err)
	}
}

func TestSnapshotAnchorsTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		mustAppend(t, w, seq, "op", "x")
	}
	if err := w.Snapshot(5, []byte(`{"state":"five"}`)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 6, "op", "y")
	mustAppend(t, w, 7, "op", "z")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 5 || string(rec.Snapshot) != `{"state":"five"}` {
		t.Fatalf("snapshot: seq=%d blob=%q", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 2 || rec.Records[0].Seq != 6 || rec.LastSeq != 7 {
		t.Fatalf("tail: %+v last=%d", rec.Records, rec.LastSeq)
	}
}

func TestNewestDamagedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		mustAppend(t, w, seq, "op", "x")
	}
	if err := w.Snapshot(2, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(4, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of the newest snapshot.
	path := filepath.Join(dir, "snapshot-4.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 2 || string(rec.Snapshot) != "old" {
		t.Fatalf("fallback: seq=%d blob=%q", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 2 || rec.Records[0].Seq != 3 {
		t.Fatalf("tail after fallback: %+v", rec.Records)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, "op", "keep")
	mustAppend(t, w, 2, "op", "lost-in-the-crash")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the second record.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.TornTail || len(rec.Records) != 1 || rec.LastSeq != 1 {
		t.Fatalf("torn tail: torn=%v records=%d last=%d", rec.TornTail, len(rec.Records), rec.LastSeq)
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, "op", "aaaa")
	mustAppend(t, w, 2, "op", "bbbb")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[12] ^= 0x40 // damage the first record's body
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestDuplicateSeqRejected(t *testing.T) {
	var buf []byte
	var err error
	for _, seq := range []uint64{1, 2, 2} {
		buf, err = AppendRecord(buf, Record{Seq: seq, Type: "op", Payload: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := DecodeStream(buf); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("got %v, want ErrBadSeq", err)
	}
}

func TestLoadMissingDirIsEmpty(t *testing.T) {
	rec, err := Load(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 0 || len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("want empty recovery, got %+v", rec)
	}
}

func TestWriterResumesAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, 1, "op", "x")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Create(dir, rec.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w2, 2, "op", "y")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	rec2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.LastSeq != 2 || len(rec2.Records) != 2 {
		t.Fatalf("resume: last=%d records=%d", rec2.LastSeq, len(rec2.Records))
	}
}

// snapFiles lists the snapshot file names present in dir, sorted.
func snapFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == snapSuffix {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// TestSnapshotCompactsLog proves checkpointing bounds the directory: each
// snapshot after the first garbage-collects snapshots older than the
// previous generation and rewrites the log without the records that
// previous generation folded in, while the retained generation still
// backstops a damaged newest snapshot.
func TestSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 4; seq++ {
		mustAppend(t, w, seq, "op", "x")
	}
	if err := w.Snapshot(4, []byte("gen1")); err != nil {
		t.Fatal(err)
	}
	// First checkpoint: the full log is the only fallback, nothing dropped.
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if recs, _, err := DecodeStream(raw); err != nil || len(recs) != 4 {
		t.Fatalf("after first snapshot: %d records, err %v (want full log)", len(recs), err)
	}

	for seq := uint64(5); seq <= 8; seq++ {
		mustAppend(t, w, seq, "op", "y")
	}
	if err := w.Snapshot(8, []byte("gen2")); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint: records folded into gen1 are dropped from the log.
	raw, err = os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if recs, _, err := DecodeStream(raw); err != nil || len(recs) != 4 || recs[0].Seq != 5 {
		t.Fatalf("after second snapshot: %d records starting %d, err %v (want 4 from seq 5)", len(recs), recs[0].Seq, err)
	}

	for seq := uint64(9); seq <= 10; seq++ {
		mustAppend(t, w, seq, "op", "z")
	}
	if err := w.Snapshot(10, []byte("gen3")); err != nil {
		t.Fatal(err)
	}
	// Third checkpoint: gen1 is older than the retained generation — gone.
	if got := snapFiles(t, dir); len(got) != 2 || got[0] != "snapshot-10.snap" || got[1] != "snapshot-8.snap" {
		t.Fatalf("snapshots after GC: %v, want [snapshot-10.snap snapshot-8.snap]", got)
	}

	// The writer's handle follows the rewritten file: post-compaction
	// appends must be visible to the next Load.
	mustAppend(t, w, 11, "op", "tail")
	mustAppend(t, w, 12, "op", "tail")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 10 || string(rec.Snapshot) != "gen3" {
		t.Fatalf("newest: seq=%d blob=%q", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 2 || rec.Records[0].Seq != 11 || rec.LastSeq != 12 {
		t.Fatalf("tail: %+v last=%d", rec.Records, rec.LastSeq)
	}

	// Damage the newest snapshot: the retained previous generation plus the
	// compacted log still recover the full tail.
	path := filepath.Join(dir, "snapshot-10.snap")
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotSeq != 8 || string(rec.Snapshot) != "gen2" {
		t.Fatalf("fallback: seq=%d blob=%q", rec.SnapshotSeq, rec.Snapshot)
	}
	if len(rec.Records) != 4 || rec.Records[0].Seq != 9 || rec.LastSeq != 12 {
		t.Fatalf("fallback tail: %+v last=%d", rec.Records, rec.LastSeq)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	framed, err := EncodeSnapshot(42, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	seq, payload, err := DecodeSnapshot(framed)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || !bytes.Equal(payload, []byte("payload")) {
		t.Fatalf("got seq=%d payload=%q", seq, payload)
	}
	if _, _, err := DecodeSnapshot(append(framed, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: got %v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeSnapshot(framed[:len(framed)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload: got %v, want ErrTruncated", err)
	}
}
