// Package wal implements the orchestrator's durable write-ahead log: an
// append-only stream of typed, length-prefixed, CRC32-guarded records plus
// periodically checkpointed snapshot files. The package is deliberately
// payload-agnostic — record payloads and snapshot blobs are opaque byte
// slices whose schema belongs to the caller (internal/core) — so the
// framing layer can be tested and fuzzed in isolation and never imports
// orchestration code.
//
// On-disk layout inside a data directory:
//
//	wal.log              append-only record stream
//	snapshot-<seq>.snap  checkpoint anchored at record sequence <seq>
//
// A record envelope is
//
//	u32 body length | u32 CRC32(body) | body
//
// where body is
//
//	u64 sequence | u8 type length | type | payload
//
// all integers little-endian. Sequence numbers start at 1 and increase by
// exactly one per record; Load rejects gaps and duplicates with ErrBadSeq.
// A partially written record at the end of the log (torn write on crash)
// decodes as ErrTruncated and is tolerated by Load — the stream simply
// ends there. A record whose declared body is fully present but fails its
// CRC is ErrCorrupt and rejected outright, even at the tail: the length
// prefix was durable, so the damage is not a torn write.
//
// Snapshot files carry their own magic, sequence anchor and CRC and are
// written to a temporary name then atomically renamed, so a crash during
// checkpointing never yields a half-written snapshot under the final name.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Typed decode errors. Callers distinguish a tolerable torn tail
// (ErrTruncated) from unrecoverable damage (ErrCorrupt) and ordering bugs
// (ErrBadSeq) with errors.Is.
var (
	// ErrTruncated reports a record or snapshot whose declared bytes run
	// past the end of the input — the torn-write signature of a crash
	// mid-append. Load tolerates it at the log tail.
	ErrTruncated = errors.New("wal: truncated record")
	// ErrCorrupt reports framing damage other than simple truncation: a
	// CRC mismatch over a fully present body, an implausible length, a
	// malformed body, or a bad snapshot magic.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrBadSeq reports a sequence gap or duplicate in the record stream.
	ErrBadSeq = errors.New("wal: sequence out of order")
)

const (
	logName     = "wal.log"
	snapSuffix  = ".snap"
	snapPrefix  = "snapshot-"
	headerBytes = 8 // u32 length + u32 crc
	// maxBody bounds a single record body (and snapshot payload). Real
	// records are a few KiB; anything larger is framing damage, and the
	// bound keeps a corrupted length prefix from driving a giant
	// allocation during decode.
	maxBody = 1 << 26

	snapMagic       = "OWS1"
	snapHeaderBytes = 4 + 8 + 4 + 4 // magic + u64 seq + u32 length + u32 crc
)

// Record is one typed log entry. Payload is opaque to this package.
type Record struct {
	Seq     uint64
	Type    string
	Payload []byte
}

// AppendRecord encodes rec and appends the framed bytes to dst. The body is
// encoded in place after the header and the CRC backfilled over it, so no
// intermediate buffer is materialized — this sits on the durable hot path,
// once per logged operation.
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	if len(rec.Type) == 0 || len(rec.Type) > 255 {
		return dst, fmt.Errorf("wal: record type length %d out of range [1,255]", len(rec.Type))
	}
	bodyLen := 8 + 1 + len(rec.Type) + len(rec.Payload)
	if bodyLen > maxBody {
		return dst, fmt.Errorf("wal: record body %d exceeds limit %d", bodyLen, maxBody)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	dst = append(dst, 0, 0, 0, 0) // CRC, backfilled once the body is in place
	crcAt := len(dst) - 4
	bodyAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, rec.Seq)
	dst = append(dst, byte(len(rec.Type)))
	dst = append(dst, rec.Type...)
	dst = append(dst, rec.Payload...)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc32.ChecksumIEEE(dst[bodyAt:]))
	return dst, nil
}

// DecodeRecord decodes one framed record from the front of b, returning
// the record and the number of bytes consumed. Missing bytes relative to
// the declared length yield ErrTruncated; everything else wrong is
// ErrCorrupt.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerBytes {
		return Record{}, 0, ErrTruncated
	}
	bodyLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if bodyLen < 9 || bodyLen > maxBody {
		return Record{}, 0, fmt.Errorf("%w: implausible body length %d", ErrCorrupt, bodyLen)
	}
	if len(b) < headerBytes+bodyLen {
		return Record{}, 0, ErrTruncated
	}
	wantCRC := binary.LittleEndian.Uint32(b[4:8])
	body := b[headerBytes : headerBytes+bodyLen]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	seq := binary.LittleEndian.Uint64(body[0:8])
	tl := int(body[8])
	if tl == 0 || 9+tl > bodyLen {
		return Record{}, 0, fmt.Errorf("%w: type length %d outside body", ErrCorrupt, tl)
	}
	rec := Record{
		Seq:     seq,
		Type:    string(body[9 : 9+tl]),
		Payload: append([]byte(nil), body[9+tl:]...),
	}
	return rec, headerBytes + bodyLen, nil
}

// DecodeStream decodes every record in b, enforcing contiguous sequence
// numbers. It stops cleanly at a truncated tail (returning truncated=true)
// but surfaces ErrCorrupt and ErrBadSeq as hard errors.
func DecodeStream(b []byte) (recs []Record, truncated bool, err error) {
	var prev uint64
	for len(b) > 0 {
		rec, n, err := DecodeRecord(b)
		if errors.Is(err, ErrTruncated) {
			return recs, true, nil
		}
		if err != nil {
			return recs, false, err
		}
		if len(recs) > 0 && rec.Seq != prev+1 {
			return recs, false, fmt.Errorf("%w: record %d follows %d", ErrBadSeq, rec.Seq, prev)
		}
		prev = rec.Seq
		recs = append(recs, rec)
		b = b[n:]
	}
	return recs, false, nil
}

// EncodeSnapshot frames a snapshot blob anchored at record sequence seq.
func EncodeSnapshot(seq uint64, payload []byte) ([]byte, error) {
	if len(payload) > maxBody {
		return nil, fmt.Errorf("wal: snapshot payload %d exceeds limit %d", len(payload), maxBody)
	}
	out := make([]byte, 0, snapHeaderBytes+len(payload))
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint64(out, seq)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...), nil
}

// DecodeSnapshot validates a framed snapshot file and returns its anchor
// sequence and payload. Short input is ErrTruncated; bad magic, CRC
// mismatch, implausible length or trailing garbage is ErrCorrupt.
func DecodeSnapshot(b []byte) (seq uint64, payload []byte, err error) {
	if len(b) < snapHeaderBytes {
		return 0, nil, ErrTruncated
	}
	if string(b[0:4]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: bad snapshot magic %q", ErrCorrupt, b[0:4])
	}
	seq = binary.LittleEndian.Uint64(b[4:12])
	n := int(binary.LittleEndian.Uint32(b[12:16]))
	if n > maxBody {
		return 0, nil, fmt.Errorf("%w: implausible snapshot length %d", ErrCorrupt, n)
	}
	if len(b) < snapHeaderBytes+n {
		return 0, nil, ErrTruncated
	}
	if len(b) != snapHeaderBytes+n {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(b)-snapHeaderBytes-n)
	}
	wantCRC := binary.LittleEndian.Uint32(b[16:20])
	payload = append([]byte(nil), b[20:20+n]...)
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	return seq, payload, nil
}

// Writer appends records to wal.log in a data directory with batched
// fsync: Append buffers in memory, Sync writes the batch and fsyncs. It is
// not safe for concurrent use; internal/core serializes access.
type Writer struct {
	dir  string
	f    *os.File
	pend []byte
	seq  uint64
	// free is a single-slot recycling rack for pending buffers detached by
	// StageSync: at most one staged step is in flight at a time (the caller
	// serializes them), and its step returns the buffer here once the bytes
	// are on disk, so steady-state group commit appends into a warm buffer
	// instead of regrowing one from nil per group. Atomic because the step
	// runs outside the append lock.
	free atomic.Pointer[[]byte]
}

// Create opens (creating if needed) the write-ahead log in dir for
// appending. lastSeq is the sequence of the last record already present —
// 0 for a fresh directory, or Recovered.LastSeq when resuming after
// recovery.
func Create(dir string, lastSeq uint64) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	return &Writer{dir: dir, f: f, seq: lastSeq}, nil
}

// LastSeq returns the sequence of the most recently appended record.
func (w *Writer) LastSeq() uint64 { return w.seq }

// Append buffers one record. The sequence must be exactly LastSeq()+1.
func (w *Writer) Append(rec Record) error {
	if rec.Seq != w.seq+1 {
		return fmt.Errorf("%w: append %d after %d", ErrBadSeq, rec.Seq, w.seq)
	}
	if w.pend == nil {
		if p := w.free.Swap(nil); p != nil {
			w.pend = *p
		}
	}
	out, err := AppendRecord(w.pend, rec)
	if err != nil {
		return err
	}
	w.pend = out
	w.seq = rec.Seq
	return nil
}

// Sync writes all buffered records to the log and fsyncs — the batch
// commit point. A no-op when nothing is pending.
func (w *Writer) Sync() error {
	if len(w.pend) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.pend); err != nil {
		return fmt.Errorf("wal: write batch: %w", err)
	}
	w.pend = w.pend[:0]
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// StageSync detaches the buffered records and returns a step that writes
// them to the log and fsyncs — the two halves of Sync split apart so a
// group-commit leader can run the slow half outside the append lock while
// followers keep buffering new records into a fresh pending buffer.
//
// The caller must serialize staged steps (only one in flight at a time, in
// staging order) so file bytes land in sequence order, and must not call
// Snapshot or Close while a staged step is outstanding: both may replace
// the underlying file handle, which the step captured at staging time. The
// step always fsyncs, even when nothing was pending, so it can double as a
// pure durability barrier.
func (w *Writer) StageSync() func() error {
	pend := w.pend
	w.pend = nil
	f := w.f
	return func() error {
		if len(pend) > 0 {
			if _, err := f.Write(pend); err != nil {
				return fmt.Errorf("wal: write batch: %w", err)
			}
			buf := pend[:0]
			w.free.Store(&buf)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		return nil
	}
}

// Snapshot durably writes a checkpoint anchored at record sequence seq:
// the framed blob goes to a temporary file, is fsynced, and is atomically
// renamed to snapshot-<seq>.snap. Pending records are synced first so the
// snapshot never anchors ahead of the durable log.
//
// After the checkpoint is durable the directory is compacted, keeping one
// fallback generation: snapshots older than the previous checkpoint are
// deleted and the log is rewritten without the records folded into that
// previous checkpoint. If the newest snapshot file is later found damaged,
// Load still recovers from the previous one plus the retained tail; until a
// second checkpoint exists the full log is kept as the fallback. Disk usage
// is therefore bounded by roughly two checkpoint intervals instead of the
// full history.
func (w *Writer) Snapshot(seq uint64, payload []byte) error {
	if err := w.Sync(); err != nil {
		return err
	}
	framed, err := EncodeSnapshot(seq, payload)
	if err != nil {
		return err
	}
	final := filepath.Join(w.dir, fmt.Sprintf("%s%d%s", snapPrefix, seq, snapSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	return w.compact(seq)
}

// snapshotSeqs lists the anchors of the snapshot files present in dir,
// newest first.
func snapshotSeqs(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs
}

// compact garbage-collects the directory after a successful checkpoint at
// anchor newest: every snapshot older than the previous checkpoint is
// deleted, and the log is atomically rewritten without the records the
// previous checkpoint folded in (they can never be replayed again — even
// the fallback path starts at the previous anchor). The rewrite is
// tmp+fsync+rename; a crash at any point leaves either the old or the new
// log, both valid. Compaction is an optimization, so a dirty log (torn
// tail, decode anomaly) skips it rather than failing the checkpoint; only
// losing the writer's own file handle after the rename is a hard error.
func (w *Writer) compact(newest uint64) error {
	var prev uint64
	for _, n := range snapshotSeqs(w.dir) {
		if n < newest && n > prev {
			prev = n
		}
	}
	if prev == 0 {
		return nil // first checkpoint: the full log is the only fallback
	}
	for _, n := range snapshotSeqs(w.dir) {
		if n < prev {
			os.Remove(filepath.Join(w.dir, fmt.Sprintf("%s%d%s", snapPrefix, n, snapSuffix)))
		}
	}

	path := filepath.Join(w.dir, logName)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	recs, torn, err := DecodeStream(raw)
	if err != nil || torn {
		return nil
	}
	var out []byte
	dropped := false
	for _, rec := range recs {
		if rec.Seq <= prev {
			dropped = true
			continue
		}
		if out, err = AppendRecord(out, rec); err != nil {
			return nil
		}
	}
	if !dropped {
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil
	}
	// The writer's handle still points at the replaced inode; appends must
	// land in the rewritten log.
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen compacted log: %w", err)
	}
	w.f.Close()
	w.f = nf
	return nil
}

// Close syncs pending records and closes the log file.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Recovered is the durable state Load reconstructs from a data directory.
type Recovered struct {
	// SnapshotSeq anchors the snapshot: all records with Seq <=
	// SnapshotSeq are folded into it. Zero when no snapshot exists.
	SnapshotSeq uint64
	// Snapshot is the raw checkpoint blob (nil without a snapshot).
	Snapshot []byte
	// Records is the log tail to replay, strictly after SnapshotSeq.
	Records []Record
	// LastSeq is the last durable record sequence (snapshot anchor when
	// the tail is empty).
	LastSeq uint64
	// TornTail reports that the log ended in a partially written record,
	// which was discarded.
	TornTail bool
	// LogBytes is the byte length of the log's valid prefix (the whole
	// file unless TornTail). Repair truncates to it before re-appending.
	LogBytes int64
}

// Repair truncates wal.log in dir to validBytes, discarding a torn tail so
// a new Writer's appends continue the valid record stream. Call it with
// Recovered.LogBytes when Recovered.TornTail is set, before Create.
func Repair(dir string, validBytes int64) error {
	if err := os.Truncate(filepath.Join(dir, logName), validBytes); err != nil {
		return fmt.Errorf("wal: repair log: %w", err)
	}
	return nil
}

// Load reads the latest usable snapshot plus the log tail from dir. A
// missing directory or empty log yields an empty Recovered, not an error.
// The newest snapshot wins; if its file is damaged, older snapshots are
// tried before falling back to full-log replay. Log damage other than a
// torn tail is a hard error.
func Load(dir string) (*Recovered, error) {
	out := &Recovered{}

	if _, err := os.Stat(dir); errors.Is(err, os.ErrNotExist) {
		return out, nil
	} else if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}

	for _, n := range snapshotSeqs(dir) {
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s%d%s", snapPrefix, n, snapSuffix)))
		if err != nil {
			continue
		}
		seq, payload, err := DecodeSnapshot(raw)
		if err != nil || seq != n {
			continue // damaged checkpoint: fall back to an older one
		}
		out.SnapshotSeq = seq
		out.Snapshot = payload
		break
	}

	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if errors.Is(err, os.ErrNotExist) {
		out.LastSeq = out.SnapshotSeq
		return out, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: read log: %w", err)
	}
	recs, torn, err := DecodeStream(raw)
	if err != nil {
		return nil, err
	}
	out.TornTail = torn
	out.LogBytes = int64(len(raw))
	if torn {
		// Re-walk to find where the valid prefix ends: a new Writer must
		// not append after the torn fragment (Repair truncates to here).
		valid := 0
		for b := raw; len(b) > 0; {
			_, n, err := DecodeRecord(b)
			if err != nil {
				break
			}
			valid += n
			b = b[n:]
		}
		out.LogBytes = int64(valid)
	}
	out.LastSeq = out.SnapshotSeq
	for _, rec := range recs {
		if rec.Seq <= out.SnapshotSeq {
			continue
		}
		if rec.Seq != out.LastSeq+1 {
			return nil, fmt.Errorf("%w: tail record %d after snapshot anchor %d", ErrBadSeq, rec.Seq, out.LastSeq)
		}
		out.Records = append(out.Records, rec)
		out.LastSeq = rec.Seq
	}
	return out, nil
}
