package wal

import (
	"errors"
	"testing"
)

// validStream returns a well-formed three-record log for seeding.
func validStream(tb testing.TB) []byte {
	tb.Helper()
	var buf []byte
	var err error
	for seq := uint64(1); seq <= 3; seq++ {
		buf, err = AppendRecord(buf, Record{Seq: seq, Type: "admit", Payload: []byte(`{"id":"s-1","mbps":30}`)})
		if err != nil {
			tb.Fatal(err)
		}
	}
	return buf
}

// FuzzWALDecode asserts the record-stream decoder never panics and fails
// only through the typed error taxonomy: torn tails are tolerated
// (truncated=true, nil error), while corruption and sequence damage
// surface as ErrCorrupt / ErrBadSeq — never silent partial state beyond
// the damage point.
func FuzzWALDecode(f *testing.F) {
	valid := validStream(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[10] ^= 0x80 // bit-flipped body => CRC mismatch
	f.Add(flipped)
	dup, _ := AppendRecord(nil, Record{Seq: 1, Type: "op", Payload: []byte("x")})
	dup, _ = AppendRecord(dup, Record{Seq: 1, Type: "op", Payload: []byte("x")})
	f.Add(dup) // duplicate sequence number
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, truncated, err := DecodeStream(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadSeq) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if truncated && len(data) == 0 {
			t.Fatal("empty input reported as truncated")
		}
		// Whatever decoded must re-encode to a prefix-consistent stream:
		// each record round-trips through the codec.
		for _, rec := range recs {
			framed, err := AppendRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			back, n, err := DecodeRecord(framed)
			if err != nil || n != len(framed) {
				t.Fatalf("re-decode: n=%d err=%v", n, err)
			}
			if back.Seq != rec.Seq || back.Type != rec.Type || string(back.Payload) != string(rec.Payload) {
				t.Fatalf("round-trip mismatch: %+v vs %+v", back, rec)
			}
		}
	})
}

// FuzzSnapshotDecode asserts the snapshot framing decoder never panics and
// rejects damage with typed errors only.
func FuzzSnapshotDecode(f *testing.F) {
	valid, err := EncodeSnapshot(7, []byte(`{"record_seq":7,"slices":[]}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated payload
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x01 // bit-flipped payload => CRC mismatch
	f.Add(flipped)
	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	f.Add(badMagic)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("untyped snapshot error: %v", err)
			}
			return
		}
		framed, err := EncodeSnapshot(seq, payload)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if string(framed) != string(data) {
			t.Fatal("snapshot round-trip is not canonical")
		}
	})
}
