package transport

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// PathRequest describes the constraints of a path computation: minimum
// residual bandwidth on every hop and a maximum end-to-end delay. This is
// the CSPF query the demo's transport controller answers when a slice is
// installed ("dedicated paths are selected to guarantee the required delay
// and capacity in the transport network").
type PathRequest struct {
	From, To string
	// MinMbps is the bandwidth the path must be able to reserve.
	MinMbps float64
	// MaxDelayMs caps the path delay; <= 0 means unconstrained.
	MaxDelayMs float64
}

// Path is a computed (not yet reserved) route.
type Path struct {
	Hops    []string
	DelayMs float64
	// BottleneckMbps is the smallest residual capacity along the path.
	BottleneckMbps float64
}

// heapNode is one priority-queue entry: a dense node index keyed by
// tentative delay. Duplicates are allowed (lazy deletion, as before).
type heapNode struct {
	delay float64
	node  int32
}

// heapUp/heapDown/heapPush/heapPop replicate container/heap's sift
// algorithm exactly, with the same strict delay-only Less the old pointer
// queue used. Equal-delay entries therefore pop in the identical order the
// old implementation produced, which fixed-seed goldens depend on.
func heapUp(h []heapNode, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !(h[j].delay < h[i].delay) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func heapDown(h []heapNode, i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h[j2].delay < h[j1].delay {
			j = j2 // right child
		}
		if !(h[j].delay < h[i].delay) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func heapPush(h *[]heapNode, x heapNode) {
	*h = append(*h, x)
	heapUp(*h, len(*h)-1)
}

func heapPop(h *[]heapNode) heapNode {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	heapDown(old[:n], 0)
	*h = old[:n]
	return old[n]
}

// dijkstraScratch holds the per-run working arrays of the path computation,
// indexed by dense node index and recycled through a pool so steady-state
// path queries allocate nothing.
type dijkstraScratch struct {
	dist    []float64
	prevIdx []int32
	prevLnk []*Link
	visited []bool
	heap    []heapNode
}

var dijkstraPool = sync.Pool{New: func() any { return new(dijkstraScratch) }}

// reset sizes the arrays for n nodes and restores initial state.
func (s *dijkstraScratch) reset(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prevIdx = make([]int32, n)
		s.prevLnk = make([]*Link, n)
		s.visited = make([]bool, n)
	}
	s.dist = s.dist[:n]
	s.prevIdx = s.prevIdx[:n]
	s.prevLnk = s.prevLnk[:n]
	s.visited = s.visited[:n]
	for i := 0; i < n; i++ {
		s.dist[i] = math.Inf(1)
		s.prevIdx[i] = -1
		s.prevLnk[i] = nil
		s.visited[i] = false
	}
	s.heap = s.heap[:0]
}

// ShortestPath computes the minimum-delay path satisfying the request's
// bandwidth constraint (links with insufficient residual are pruned), then
// verifies the delay budget. It returns ErrNoPath when the pruned graph is
// disconnected and ErrDelayBudget when a path exists but misses the budget.
// The computation holds only the shared read lock, so admission feasibility
// checks from concurrent slice requests run fully in parallel.
func (n *Network) ShortestPath(req PathRequest) (Path, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.shortestPathLocked(req, nil, nil)
}

// shortestPathLocked runs Dijkstra by delay. skipLinks/skipNodes support
// Yen's algorithm. Neighbours are scanned in insertion order; ties resolve
// deterministically via the (delay, insertion seq) queue ordering. The
// working arrays come from a pool; only the returned hop list allocates.
func (n *Network) shortestPathLocked(req PathRequest, skipLinks map[string]bool, skipNodes map[string]bool) (Path, error) {
	s := dijkstraPool.Get().(*dijkstraScratch)
	defer dijkstraPool.Put(s)
	d, to, err := n.dijkstraLocked(s, req, skipLinks, skipNodes)
	if err != nil {
		return Path{}, err
	}

	// Rebuild hop list from the predecessor chain, front-filled.
	depth := 1
	for at := to; s.prevIdx[at] >= 0; at = s.prevIdx[at] {
		depth++
	}
	hops := make([]string, depth)
	bott := math.Inf(1)
	for at, i := to, depth-1; ; i-- {
		hops[i] = n.names[at]
		l := s.prevLnk[at]
		if l == nil {
			break
		}
		if r := l.ResidualMbps(); r < bott {
			bott = r
		}
		at = s.prevIdx[at]
	}
	return Path{Hops: hops, DelayMs: d, BottleneckMbps: bott}, nil
}

// dijkstraLocked is the shared search core: it fills s with the shortest
// delay tree from req.From and returns the delay and dense index of req.To.
// It performs no allocations beyond scratch growth on first use.
func (n *Network) dijkstraLocked(s *dijkstraScratch, req PathRequest, skipLinks map[string]bool, skipNodes map[string]bool) (float64, int32, error) {
	from, ok := n.idx[req.From]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownNode, req.From)
	}
	to, ok := n.idx[req.To]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownNode, req.To)
	}

	s.reset(len(n.names))
	s.dist[from] = 0
	heapPush(&s.heap, heapNode{delay: 0, node: from})

	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		if s.visited[it.node] {
			continue
		}
		s.visited[it.node] = true
		if it.node == to {
			break
		}
		for _, l := range n.adjx[it.node] {
			if !l.Up {
				continue
			}
			if skipLinks != nil && skipLinks[l.key()] {
				continue
			}
			if skipNodes != nil && skipNodes[l.To] {
				continue
			}
			if l.ResidualMbps() < req.MinMbps-1e-9 {
				continue
			}
			nd := it.delay + l.DelayMs
			if nd < s.dist[l.toIdx] {
				s.dist[l.toIdx] = nd
				s.prevIdx[l.toIdx] = it.node
				s.prevLnk[l.toIdx] = l
				heapPush(&s.heap, heapNode{delay: nd, node: l.toIdx})
			}
		}
	}

	d := s.dist[to]
	if math.IsInf(d, 1) {
		return 0, 0, fmt.Errorf("%w: %s -> %s at %.1f Mbps", ErrNoPath, req.From, req.To, req.MinMbps)
	}
	if req.MaxDelayMs > 0 && d > req.MaxDelayMs+1e-9 {
		return 0, 0, fmt.Errorf("%w: best %.2f ms > budget %.2f ms", ErrDelayBudget, d, req.MaxDelayMs)
	}
	return d, to, nil
}

// PathDelay computes the minimum feasible delay for the request without
// materialising the hop list — the allocation-free form of ShortestPath for
// feasibility checks that only need the delay answer.
func (n *Network) PathDelay(req PathRequest) (float64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := dijkstraPool.Get().(*dijkstraScratch)
	defer dijkstraPool.Put(s)
	d, _, err := n.dijkstraLocked(s, req, nil, nil)
	return d, err
}

// KShortestPaths returns up to k loop-free minimum-delay paths satisfying
// the bandwidth constraint (Yen's algorithm). Paths that violate the delay
// budget are excluded. Used for restoration after link failures and for the
// embedding ablation.
func (n *Network) KShortestPaths(req PathRequest, k int) ([]Path, error) {
	if k < 1 {
		k = 1
	}
	n.mu.RLock()
	defer n.mu.RUnlock()

	unconstrained := req
	unconstrained.MaxDelayMs = 0 // apply the budget as a filter at the end
	first, err := n.shortestPathLocked(unconstrained, nil, nil)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		base := paths[len(paths)-1]
		for i := 0; i+1 < len(base.Hops); i++ {
			spurNode := base.Hops[i]
			rootPath := base.Hops[:i+1]

			skipLinks := map[string]bool{}
			for _, p := range paths {
				if len(p.Hops) > i && equalHops(p.Hops[:i+1], rootPath) {
					skipLinks[p.Hops[i]+"->"+p.Hops[i+1]] = true
				}
			}
			skipNodes := map[string]bool{}
			for _, h := range rootPath[:len(rootPath)-1] {
				skipNodes[h] = true
			}

			spurReq := unconstrained
			spurReq.From = spurNode
			spur, err := n.shortestPathLocked(spurReq, skipLinks, skipNodes)
			if err != nil {
				continue
			}
			total := append(append([]string(nil), rootPath[:len(rootPath)-1]...), spur.Hops...)
			cand := n.assessLocked(total)
			if cand == nil {
				continue
			}
			if !containsPath(paths, cand.Hops) && !containsPath(candidates, cand.Hops) {
				candidates = append(candidates, *cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Pop the lowest-delay candidate.
		best := 0
		for i := range candidates {
			if candidates[i].DelayMs < candidates[best].DelayMs {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}

	// Apply the delay budget filter.
	out := paths[:0]
	for _, p := range paths {
		if req.MaxDelayMs <= 0 || p.DelayMs <= req.MaxDelayMs+1e-9 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %d paths found, none within %.2f ms", ErrDelayBudget, len(paths), req.MaxDelayMs)
	}
	return out, nil
}

// assessLocked computes delay/bottleneck for a hop list, returning nil when
// any link is missing, down, or the list has a loop.
func (n *Network) assessLocked(hops []string) *Path {
	seen := map[string]bool{}
	for _, h := range hops {
		if seen[h] {
			return nil
		}
		seen[h] = true
	}
	delay := 0.0
	bott := math.Inf(1)
	for i := 0; i+1 < len(hops); i++ {
		l, ok := n.links[hops[i]+"->"+hops[i+1]]
		if !ok || !l.Up {
			return nil
		}
		delay += l.DelayMs
		if r := l.ResidualMbps(); r < bott {
			bott = r
		}
	}
	return &Path{Hops: append([]string(nil), hops...), DelayMs: delay, BottleneckMbps: bott}
}

func equalHops(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, hops []string) bool {
	for _, p := range ps {
		if equalHops(p.Hops, hops) {
			return true
		}
	}
	return false
}

// ReservePath computes the best path for req and reserves req.MinMbps on it
// under pathID — the common fast path for slice installation. The
// computation runs under the shared read lock and the reservation
// revalidates residuals under the write lock, so a concurrent installation
// may have consumed the chosen path's bandwidth in between; in that case
// the computation is retried on the updated topology (optimistic
// concurrency) before the bandwidth error is surfaced.
func (n *Network) ReservePath(pathID string, req PathRequest) (*Reservation, error) {
	const attempts = 4
	var err error
	for try := 0; try < attempts; try++ {
		var p Path
		p, err = n.ShortestPath(req)
		if err != nil {
			return nil, err
		}
		var r *Reservation
		r, err = n.Reserve(pathID, p.Hops, req.MinMbps)
		if err == nil {
			return r, nil
		}
		if !errors.Is(err, ErrInsufficientBW) {
			return nil, err
		}
	}
	return nil, err
}
