package transport

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// PathRequest describes the constraints of a path computation: minimum
// residual bandwidth on every hop and a maximum end-to-end delay. This is
// the CSPF query the demo's transport controller answers when a slice is
// installed ("dedicated paths are selected to guarantee the required delay
// and capacity in the transport network").
type PathRequest struct {
	From, To string
	// MinMbps is the bandwidth the path must be able to reserve.
	MinMbps float64
	// MaxDelayMs caps the path delay; <= 0 means unconstrained.
	MaxDelayMs float64
}

// Path is a computed (not yet reserved) route.
type Path struct {
	Hops    []string
	DelayMs float64
	// BottleneckMbps is the smallest residual capacity along the path.
	BottleneckMbps float64
}

// item for the Dijkstra priority queue.
type pqItem struct {
	node  string
	delay float64
	index int
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].delay < q[j].delay }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.index = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// ShortestPath computes the minimum-delay path satisfying the request's
// bandwidth constraint (links with insufficient residual are pruned), then
// verifies the delay budget. It returns ErrNoPath when the pruned graph is
// disconnected and ErrDelayBudget when a path exists but misses the budget.
// The computation holds only the shared read lock, so admission feasibility
// checks from concurrent slice requests run fully in parallel.
func (n *Network) ShortestPath(req PathRequest) (Path, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.shortestPathLocked(req, nil, nil)
}

// shortestPathLocked runs Dijkstra by delay. skipLinks/skipNodes support
// Yen's algorithm. Neighbours are scanned in insertion order; ties resolve
// deterministically via the (delay, insertion seq) queue ordering.
func (n *Network) shortestPathLocked(req PathRequest, skipLinks map[string]bool, skipNodes map[string]bool) (Path, error) {
	if _, ok := n.nodes[req.From]; !ok {
		return Path{}, fmt.Errorf("%w: %q", ErrUnknownNode, req.From)
	}
	if _, ok := n.nodes[req.To]; !ok {
		return Path{}, fmt.Errorf("%w: %q", ErrUnknownNode, req.To)
	}

	dist := map[string]float64{req.From: 0}
	prev := map[string]string{}
	visited := map[string]bool{}
	q := &pq{}
	heap.Push(q, &pqItem{node: req.From, delay: 0})

	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		if it.node == req.To {
			break
		}
		for _, l := range n.adj[it.node] {
			if !l.Up || skipLinks[l.key()] || skipNodes[l.To] {
				continue
			}
			if l.ResidualMbps() < req.MinMbps-1e-9 {
				continue
			}
			nd := it.delay + l.DelayMs
			if cur, ok := dist[l.To]; !ok || nd < cur {
				dist[l.To] = nd
				prev[l.To] = it.node
				heap.Push(q, &pqItem{node: l.To, delay: nd})
			}
		}
	}

	d, ok := dist[req.To]
	if !ok {
		return Path{}, fmt.Errorf("%w: %s -> %s at %.1f Mbps", ErrNoPath, req.From, req.To, req.MinMbps)
	}
	if req.MaxDelayMs > 0 && d > req.MaxDelayMs+1e-9 {
		return Path{}, fmt.Errorf("%w: best %.2f ms > budget %.2f ms", ErrDelayBudget, d, req.MaxDelayMs)
	}

	// Rebuild hop list.
	var hops []string
	for at := req.To; ; at = prev[at] {
		hops = append([]string{at}, hops...)
		if at == req.From {
			break
		}
	}
	bott := math.Inf(1)
	for i := 0; i+1 < len(hops); i++ {
		l := n.links[hops[i]+"->"+hops[i+1]]
		if r := l.ResidualMbps(); r < bott {
			bott = r
		}
	}
	return Path{Hops: hops, DelayMs: d, BottleneckMbps: bott}, nil
}

// KShortestPaths returns up to k loop-free minimum-delay paths satisfying
// the bandwidth constraint (Yen's algorithm). Paths that violate the delay
// budget are excluded. Used for restoration after link failures and for the
// embedding ablation.
func (n *Network) KShortestPaths(req PathRequest, k int) ([]Path, error) {
	if k < 1 {
		k = 1
	}
	n.mu.RLock()
	defer n.mu.RUnlock()

	unconstrained := req
	unconstrained.MaxDelayMs = 0 // apply the budget as a filter at the end
	first, err := n.shortestPathLocked(unconstrained, nil, nil)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		base := paths[len(paths)-1]
		for i := 0; i+1 < len(base.Hops); i++ {
			spurNode := base.Hops[i]
			rootPath := base.Hops[:i+1]

			skipLinks := map[string]bool{}
			for _, p := range paths {
				if len(p.Hops) > i && equalHops(p.Hops[:i+1], rootPath) {
					skipLinks[p.Hops[i]+"->"+p.Hops[i+1]] = true
				}
			}
			skipNodes := map[string]bool{}
			for _, h := range rootPath[:len(rootPath)-1] {
				skipNodes[h] = true
			}

			spurReq := unconstrained
			spurReq.From = spurNode
			spur, err := n.shortestPathLocked(spurReq, skipLinks, skipNodes)
			if err != nil {
				continue
			}
			total := append(append([]string(nil), rootPath[:len(rootPath)-1]...), spur.Hops...)
			cand := n.assessLocked(total)
			if cand == nil {
				continue
			}
			if !containsPath(paths, cand.Hops) && !containsPath(candidates, cand.Hops) {
				candidates = append(candidates, *cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Pop the lowest-delay candidate.
		best := 0
		for i := range candidates {
			if candidates[i].DelayMs < candidates[best].DelayMs {
				best = i
			}
		}
		paths = append(paths, candidates[best])
		candidates = append(candidates[:best], candidates[best+1:]...)
	}

	// Apply the delay budget filter.
	out := paths[:0]
	for _, p := range paths {
		if req.MaxDelayMs <= 0 || p.DelayMs <= req.MaxDelayMs+1e-9 {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %d paths found, none within %.2f ms", ErrDelayBudget, len(paths), req.MaxDelayMs)
	}
	return out, nil
}

// assessLocked computes delay/bottleneck for a hop list, returning nil when
// any link is missing, down, or the list has a loop.
func (n *Network) assessLocked(hops []string) *Path {
	seen := map[string]bool{}
	for _, h := range hops {
		if seen[h] {
			return nil
		}
		seen[h] = true
	}
	delay := 0.0
	bott := math.Inf(1)
	for i := 0; i+1 < len(hops); i++ {
		l, ok := n.links[hops[i]+"->"+hops[i+1]]
		if !ok || !l.Up {
			return nil
		}
		delay += l.DelayMs
		if r := l.ResidualMbps(); r < bott {
			bott = r
		}
	}
	return &Path{Hops: append([]string(nil), hops...), DelayMs: delay, BottleneckMbps: bott}
}

func equalHops(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, hops []string) bool {
	for _, p := range ps {
		if equalHops(p.Hops, hops) {
			return true
		}
	}
	return false
}

// ReservePath computes the best path for req and reserves req.MinMbps on it
// under pathID — the common fast path for slice installation. The
// computation runs under the shared read lock and the reservation
// revalidates residuals under the write lock, so a concurrent installation
// may have consumed the chosen path's bandwidth in between; in that case
// the computation is retried on the updated topology (optimistic
// concurrency) before the bandwidth error is surfaced.
func (n *Network) ReservePath(pathID string, req PathRequest) (*Reservation, error) {
	const attempts = 4
	var err error
	for try := 0; try < attempts; try++ {
		var p Path
		p, err = n.ShortestPath(req)
		if err != nil {
			return nil, err
		}
		var r *Reservation
		r, err = n.Reserve(pathID, p.Hops, req.MinMbps)
		if err == nil {
			return r, nil
		}
		if !errors.Is(err, ErrInsufficientBW) {
			return nil, err
		}
	}
	return nil, err
}
