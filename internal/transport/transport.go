// Package transport models the demo's transport network: mmWave and µWave
// wireless links plus wired segments interconnected through an OpenFlow
// programmable switch (NEC ProgrammableFlow PF5240 in the testbed), giving
// the orchestrator different topology configurations with predefined
// capacity and delay characteristics.
//
// The transport controller's job in the demo is to select dedicated paths
// that guarantee the delay and capacity each slice requires, installing
// flow entries in the switches. This package provides the graph, per-link
// bandwidth accounting, flow tables, and the delay-constrained path
// computation the controller runs.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeKind classifies topology nodes.
type NodeKind int

// Node kinds in the testbed topology.
const (
	// KindSwitch is a programmable (OpenFlow) switch.
	KindSwitch NodeKind = iota
	// KindENB is a radio access point's transport port.
	KindENB
	// KindDC is a data-center gateway.
	KindDC
)

// String returns the kind name.
func (k NodeKind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindENB:
		return "enb"
	case KindDC:
		return "dc"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// LinkType distinguishes the three transport technologies in the testbed.
type LinkType int

// Link technologies.
const (
	// Wired is fibre/copper: high capacity, lowest delay variance.
	Wired LinkType = iota
	// MmWave is the millimetre-wave hop: very high capacity, short reach.
	MmWave
	// MicroWave is the µWave hop: moderate capacity, longer reach.
	MicroWave
)

// String returns the link-type name.
func (lt LinkType) String() string {
	switch lt {
	case Wired:
		return "wired"
	case MmWave:
		return "mmWave"
	case MicroWave:
		return "µWave"
	default:
		return fmt.Sprintf("LinkType(%d)", int(lt))
	}
}

// Link is a directed edge with capacity/delay characteristics.
type Link struct {
	From, To     string
	Type         LinkType
	CapacityMbps float64
	DelayMs      float64
	// Up is false when the link has failed or been administratively
	// disabled (topology reconfiguration).
	Up bool

	reservedMbps float64
	byPath       map[string]float64
	// fromIdx/toIdx are the dense node indices of From/To, assigned at
	// AddLink time so path computation runs on int-indexed arrays instead
	// of string-keyed maps.
	fromIdx, toIdx int32
}

// key identifies the directed link.
func (l *Link) key() string { return l.From + "->" + l.To }

// ResidualMbps returns unreserved capacity.
func (l *Link) ResidualMbps() float64 { return l.CapacityMbps - l.reservedMbps }

// ReservedMbps returns currently reserved bandwidth.
func (l *Link) ReservedMbps() float64 { return l.reservedMbps }

// Utilization returns reserved/capacity in [0,1].
func (l *Link) Utilization() float64 {
	if l.CapacityMbps <= 0 {
		return 0
	}
	return l.reservedMbps / l.CapacityMbps
}

// Errors surfaced to the orchestrator as rejection reasons.
var (
	ErrNoPath         = errors.New("transport: no feasible path")
	ErrInsufficientBW = errors.New("transport: insufficient residual bandwidth")
	ErrUnknownNode    = errors.New("transport: unknown node")
	ErrUnknownPath    = errors.New("transport: unknown path reservation")
	ErrDuplicatePath  = errors.New("transport: path ID already reserved")
	ErrLinkExists     = errors.New("transport: link already exists")
	ErrDelayBudget    = errors.New("transport: delay budget unmeetable")
)

// FlowEntry is one OpenFlow-style rule installed in a switch: traffic of
// a path arriving from prev is forwarded to next.
type FlowEntry struct {
	PathID  string `json:"path_id"`
	InPort  string `json:"in_port"`  // previous hop node (ingress for "")
	OutPort string `json:"out_port"` // next hop node
}

// Network is the transport topology with per-link reservations and per-node
// flow tables. All methods are safe for concurrent use; read-only queries
// (path computation, utilization, snapshots) take a shared read lock, so
// concurrent slice installations only serialize on the short reserve/release
// critical sections.
type Network struct {
	mu    sync.RWMutex
	nodes map[string]NodeKind
	names []string                // dense index -> node name, insertion order
	idx   map[string]int32        // node name -> dense index
	links map[string]*Link        // key: "a->b"
	adjx  [][]*Link               // outgoing links per dense node index
	paths map[string]*Reservation // by path ID
	flows map[string][]FlowEntry  // per-switch flow table

	// linkScratch backs pathLinksScratchLocked: a working array for
	// transient hop→link resolution on the reserve/release/resize paths,
	// reused under the exclusive lock so steady-state churn allocates
	// nothing here.
	linkScratch []*Link

	// topoVer counts node/link-set changes (AddNode, AddLink) and guards
	// cached node-kind lists held by callers. feasVer counts every state
	// change that can flip a feasibility answer — topology changes plus
	// SetLinkUp, SetLinkCapacity, Reserve, Release, and Resize — and
	// guards memoized Feasible outcomes. Both only ever increase.
	topoVer atomic.Uint64
	feasVer atomic.Uint64
}

// Reservation records one reserved path.
type Reservation struct {
	ID      string   `json:"id"`
	Hops    []string `json:"hops"` // node sequence, src..dst
	Mbps    float64  `json:"mbps"`
	DelayMs float64  `json:"delay_ms"`
}

// NewNetwork returns an empty topology.
func NewNetwork() *Network {
	return &Network{
		nodes: make(map[string]NodeKind),
		idx:   make(map[string]int32),
		links: make(map[string]*Link),
		paths: make(map[string]*Reservation),
		flows: make(map[string][]FlowEntry),
	}
}

// Version returns the feasibility version: a counter bumped by every state
// change that can alter the outcome of a feasibility or path query. Callers
// may memoize query results keyed by this value; equal versions guarantee
// equal answers.
func (n *Network) Version() uint64 { return n.feasVer.Load() }

// TopoVersion returns the topology version: a counter bumped only when the
// node or link set changes. Callers may cache node-kind lists keyed by it.
func (n *Network) TopoVersion() uint64 { return n.topoVer.Load() }

// AddNode registers a node; re-adding with the same kind is a no-op.
func (n *Network) AddNode(name string, kind NodeKind) error {
	if name == "" {
		return errors.New("transport: empty node name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if k, ok := n.nodes[name]; ok {
		if k != kind {
			return fmt.Errorf("transport: node %q already exists with kind %v", name, k)
		}
		return nil
	}
	n.nodes[name] = kind
	n.idx[name] = int32(len(n.names))
	n.names = append(n.names, name)
	n.adjx = append(n.adjx, nil)
	n.topoVer.Add(1)
	n.feasVer.Add(1)
	return nil
}

// AddLink installs a directed link.
func (n *Network) AddLink(from, to string, lt LinkType, capacityMbps, delayMs float64) error {
	if capacityMbps <= 0 || delayMs < 0 {
		return fmt.Errorf("transport: link %s->%s capacity %.1f / delay %.2f invalid", from, to, capacityMbps, delayMs)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := n.nodes[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	l := &Link{
		From: from, To: to, Type: lt, CapacityMbps: capacityMbps, DelayMs: delayMs,
		Up: true, byPath: map[string]float64{},
		fromIdx: n.idx[from], toIdx: n.idx[to],
	}
	if _, ok := n.links[l.key()]; ok {
		return fmt.Errorf("%w: %s", ErrLinkExists, l.key())
	}
	n.links[l.key()] = l
	n.adjx[l.fromIdx] = append(n.adjx[l.fromIdx], l)
	n.topoVer.Add(1)
	n.feasVer.Add(1)
	return nil
}

// AddBiLink installs the link in both directions with identical
// characteristics (each direction has its own capacity, as on real
// full-duplex links).
func (n *Network) AddBiLink(a, b string, lt LinkType, capacityMbps, delayMs float64) error {
	if err := n.AddLink(a, b, lt, capacityMbps, delayMs); err != nil {
		return err
	}
	return n.AddLink(b, a, lt, capacityMbps, delayMs)
}

// SetLinkUp marks a directed link up/down (failure injection and the demo's
// "different transport network topology configurations").
func (n *Network) SetLinkUp(from, to string, up bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[from+"->"+to]
	if !ok {
		return fmt.Errorf("transport: no link %s->%s", from, to)
	}
	l.Up = up
	n.feasVer.Add(1)
	return nil
}

// SetLinkCapacity rescales a directed link's capacity — the rain-fade /
// interference model for the wireless hops (mmWave links lose most of
// their budget in heavy rain; µWave degrades more gently). Existing
// reservations are kept even if they now exceed the shrunk capacity: the
// link is oversubscribed until the orchestrator reacts (residual goes
// negative, so no new reservation or growth passes the checks).
// OversubscribedPaths lists the affected reservations.
func (n *Network) SetLinkCapacity(from, to string, capacityMbps float64) error {
	if capacityMbps <= 0 {
		return fmt.Errorf("transport: capacity %.2f must be positive (use SetLinkUp to fail the link)", capacityMbps)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	l, ok := n.links[from+"->"+to]
	if !ok {
		return fmt.Errorf("transport: no link %s->%s", from, to)
	}
	l.CapacityMbps = capacityMbps
	n.feasVer.Add(1)
	return nil
}

// OversubscribedPaths returns the path IDs reserved over links whose
// reserved bandwidth now exceeds capacity (after a degradation), sorted.
func (n *Network) OversubscribedPaths() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, l := range n.links {
		if !l.Up || l.reservedMbps <= l.CapacityMbps+1e-9 {
			continue
		}
		for id := range l.byPath {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Link returns a copy of the directed link's current state.
func (n *Network) Link(from, to string) (Link, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[from+"->"+to]
	if !ok {
		return Link{}, false
	}
	cp := *l
	cp.byPath = nil
	return cp, true
}

// Nodes returns node names sorted.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NodesOfKind returns the sorted names of nodes with the given kind.
func (n *Network) NodesOfKind(kind NodeKind) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []string
	for name, k := range n.nodes {
		if k == kind {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// appendPathLinks resolves a hop sequence into links appended to dst,
// validating adjacency. Links are found through the dense adjacency index
// rather than the "a->b"-keyed map: node out-degrees are small and the
// scan avoids building a key string per segment on the reserve/release
// hot path. Safe under either lock mode (read-only lookups).
func (n *Network) appendPathLinks(dst []*Link, hops []string) ([]*Link, error) {
	if len(hops) < 2 {
		return nil, fmt.Errorf("transport: path needs >= 2 hops, got %d", len(hops))
	}
	for i := 0; i+1 < len(hops); i++ {
		var l *Link
		if fromIdx, ok := n.idx[hops[i]]; ok {
			for _, cand := range n.adjx[fromIdx] {
				if cand.To == hops[i+1] {
					l = cand
					break
				}
			}
		}
		if l == nil {
			return nil, fmt.Errorf("transport: no link %s->%s in path", hops[i], hops[i+1])
		}
		dst = append(dst, l)
	}
	return dst, nil
}

// pathLinksLocked resolves a hop sequence into a fresh link slice; safe
// under n.mu in either mode.
func (n *Network) pathLinksLocked(hops []string) ([]*Link, error) {
	return n.appendPathLinks(make([]*Link, 0, len(hops)-1), hops)
}

// pathLinksScratchLocked is pathLinksLocked backed by the network's scratch
// array. Callers must hold n.mu EXCLUSIVELY and drop the result before
// releasing the lock — the next call reuses the backing array.
func (n *Network) pathLinksScratchLocked(hops []string) ([]*Link, error) {
	links, err := n.appendPathLinks(n.linkScratch[:0], hops)
	if links != nil {
		n.linkScratch = links
	}
	return links, err
}

// Reserve atomically reserves mbps along hops under pathID, installing flow
// entries in every intermediate switch. Either all links are reserved or
// none.
func (n *Network) Reserve(pathID string, hops []string, mbps float64) (*Reservation, error) {
	if mbps <= 0 {
		return nil, fmt.Errorf("transport: reservation of %.2f Mbps must be positive", mbps)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.paths[pathID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicatePath, pathID)
	}
	links, err := n.pathLinksScratchLocked(hops)
	if err != nil {
		return nil, err
	}
	delay := 0.0
	for _, l := range links {
		if !l.Up {
			return nil, fmt.Errorf("transport: link %s down", l.key())
		}
		if l.ResidualMbps() < mbps-1e-9 {
			return nil, fmt.Errorf("%w: %s residual %.2f < %.2f", ErrInsufficientBW, l.key(), l.ResidualMbps(), mbps)
		}
		delay += l.DelayMs
	}
	for _, l := range links {
		l.reservedMbps += mbps
		l.byPath[pathID] = mbps
	}
	r := &Reservation{ID: pathID, Hops: append([]string(nil), hops...), Mbps: mbps, DelayMs: delay}
	n.paths[pathID] = r
	n.installFlowsLocked(r)
	n.feasVer.Add(1)
	return r, nil
}

// installFlowsLocked writes OpenFlow entries for the path into each switch
// node it traverses.
func (n *Network) installFlowsLocked(r *Reservation) {
	for i, hop := range r.Hops {
		if n.nodes[hop] != KindSwitch {
			continue
		}
		in := ""
		if i > 0 {
			in = r.Hops[i-1]
		}
		out := ""
		if i+1 < len(r.Hops) {
			out = r.Hops[i+1]
		}
		n.flows[hop] = append(n.flows[hop], FlowEntry{PathID: r.ID, InPort: in, OutPort: out})
	}
}

// removeFlowsLocked drops the path's OpenFlow entries. Flows were installed
// only on the reservation's own hops, so only those switches' tables need
// touching — and install writes exactly one entry per (hop, path), so the
// scan stops at the first hit instead of filtering the whole table.
func (n *Network) removeFlowsLocked(r *Reservation) {
	for _, hop := range r.Hops {
		entries, ok := n.flows[hop]
		if !ok {
			continue
		}
		for i := range entries {
			if entries[i].PathID == r.ID {
				n.flows[hop] = append(entries[:i], entries[i+1:]...)
				break
			}
		}
	}
}

// Release frees the path's bandwidth and flow entries. Unknown IDs are a
// no-op (idempotent teardown).
func (n *Network) Release(pathID string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.paths[pathID]
	if !ok {
		return
	}
	if links, err := n.pathLinksScratchLocked(r.Hops); err == nil {
		for _, l := range links {
			l.reservedMbps -= l.byPath[pathID]
			if l.reservedMbps < 0 {
				l.reservedMbps = 0
			}
			delete(l.byPath, pathID)
		}
	}
	n.removeFlowsLocked(r)
	delete(n.paths, pathID)
	n.feasVer.Add(1)
}

// Resize changes the path's reservation to mbps, atomically.
func (n *Network) Resize(pathID string, mbps float64) error {
	if mbps <= 0 {
		return fmt.Errorf("transport: resize to %.2f Mbps must be positive", mbps)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.paths[pathID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPath, pathID)
	}
	links, err := n.pathLinksScratchLocked(r.Hops)
	if err != nil {
		return err
	}
	for _, l := range links {
		delta := mbps - l.byPath[pathID]
		if delta > l.ResidualMbps()+1e-9 {
			return fmt.Errorf("%w: %s residual %.2f < grow %.2f", ErrInsufficientBW, l.key(), l.ResidualMbps(), delta)
		}
	}
	for _, l := range links {
		l.reservedMbps += mbps - l.byPath[pathID]
		l.byPath[pathID] = mbps
	}
	r.Mbps = mbps
	n.feasVer.Add(1)
	return nil
}

// Reservation returns a copy of the named path reservation.
func (n *Network) Reservation(pathID string) (Reservation, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	r, ok := n.paths[pathID]
	if !ok {
		return Reservation{}, false
	}
	cp := *r
	cp.Hops = append([]string(nil), r.Hops...)
	return cp, true
}

// Reservations returns a copy of every path reservation, sorted by ID —
// the leak-check enumeration the invariant auditor maps back onto live
// slices.
func (n *Network) Reservations() []Reservation {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Reservation, 0, len(n.paths))
	for _, r := range n.paths {
		cp := *r
		cp.Hops = append([]string(nil), r.Hops...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AuditConservation cross-checks the per-link bandwidth books against
// ground truth and returns one message per discrepancy (empty when the
// books balance): each link's reserved counter must equal the sum of its
// per-path entries, per-path entries must belong to registered paths, every
// registered path must hold an entry on each of its links, and reserved
// bandwidth must never go negative. Links whose reservations exceed a
// (degraded) capacity are not flagged — SetLinkCapacity documents that
// oversubscription as legitimate until the orchestrator reacts.
func (n *Network) AuditConservation() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []string
	keys := make([]string, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := n.links[k]
		sum := 0.0
		for id, mbps := range l.byPath {
			if _, ok := n.paths[id]; !ok {
				out = append(out, fmt.Sprintf("transport %s: per-path entry %q has no registered reservation", k, id))
			}
			if mbps <= 0 {
				out = append(out, fmt.Sprintf("transport %s: path %q reserves non-positive %.3f Mbps", k, id, mbps))
			}
			sum += mbps
		}
		if d := l.reservedMbps - sum; d > 1e-6 || d < -1e-6 {
			out = append(out, fmt.Sprintf("transport %s: reserved counter %.3f != sum of path entries %.3f", k, l.reservedMbps, sum))
		}
		if l.reservedMbps < -1e-9 {
			out = append(out, fmt.Sprintf("transport %s: negative reserved bandwidth %.3f", k, l.reservedMbps))
		}
	}
	for id, r := range n.paths {
		links, err := n.pathLinksLocked(r.Hops)
		if err != nil {
			out = append(out, fmt.Sprintf("transport path %q: hops no longer resolve: %v", id, err))
			continue
		}
		for _, l := range links {
			if _, ok := l.byPath[id]; !ok {
				out = append(out, fmt.Sprintf("transport path %q: link %s holds no entry for it", id, l.key()))
			}
		}
	}
	sort.Strings(out)
	return out
}

// FlowTable returns a copy of the switch's flow entries.
func (n *Network) FlowTable(node string) []FlowEntry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]FlowEntry(nil), n.flows[node]...)
}

// PathsOverLink lists path IDs reserved over the directed link, sorted —
// used to find victims when a link fails.
func (n *Network) PathsOverLink(from, to string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	l, ok := n.links[from+"->"+to]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(l.byPath))
	for id := range l.byPath {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Utilization returns mean and max link utilization over up links.
func (n *Network) Utilization() (mean, max float64) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	// Sum in sorted link order: float addition is not associative, and this
	// mean is recorded as epoch telemetry, which fixed-seed runs must
	// reproduce bit-for-bit — map iteration order would leak into the bits.
	keys := make([]string, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cnt := 0
	for _, k := range keys {
		l := n.links[k]
		if !l.Up {
			continue
		}
		u := l.Utilization()
		mean += u
		if u > max {
			max = u
		}
		cnt++
	}
	if cnt > 0 {
		mean /= float64(cnt)
	}
	return mean, max
}

// LinkSnapshot is one row of the topology view.
type LinkSnapshot struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	Type         string  `json:"type"`
	CapacityMbps float64 `json:"capacity_mbps"`
	ReservedMbps float64 `json:"reserved_mbps"`
	DelayMs      float64 `json:"delay_ms"`
	Up           bool    `json:"up"`
}

// Snapshot lists all links sorted by key.
func (n *Network) Snapshot() []LinkSnapshot {
	n.mu.RLock()
	defer n.mu.RUnlock()
	keys := make([]string, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LinkSnapshot, 0, len(keys))
	for _, k := range keys {
		l := n.links[k]
		out = append(out, LinkSnapshot{
			From: l.From, To: l.To, Type: l.Type.String(),
			CapacityMbps: l.CapacityMbps, ReservedMbps: l.reservedMbps,
			DelayMs: l.DelayMs, Up: l.Up,
		})
	}
	return out
}
