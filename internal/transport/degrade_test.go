package transport

import (
	"testing"
)

func TestSetLinkCapacityRejectsNonPositive(t *testing.T) {
	n := testNet(t)
	if err := n.SetLinkCapacity("enb1", "sw1", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := n.SetLinkCapacity("ghost", "sw1", 100); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestDegradationOversubscribesExistingReservations(t *testing.T) {
	n := testNet(t)
	if _, err := n.Reserve("p1", []string{"enb1", "sw1"}, 800); err != nil {
		t.Fatal(err)
	}
	// Rain fade: the mmWave hop drops from 1000 to 300 Mbps.
	if err := n.SetLinkCapacity("enb1", "sw1", 300); err != nil {
		t.Fatal(err)
	}
	l, _ := n.Link("enb1", "sw1")
	if l.ResidualMbps() >= 0 {
		t.Fatalf("residual %.1f should be negative after fade", l.ResidualMbps())
	}
	over := n.OversubscribedPaths()
	if len(over) != 1 || over[0] != "p1" {
		t.Fatalf("oversubscribed %v", over)
	}
	// No new reservation can pass over the faded link.
	if _, err := n.Reserve("p2", []string{"enb1", "sw1"}, 10); err == nil {
		t.Fatal("reservation accepted on oversubscribed link")
	}
	// Growing the victim also fails.
	if err := n.Resize("p1", 900); err == nil {
		t.Fatal("grow accepted on oversubscribed link")
	}
	// Shrinking below the new capacity clears the condition.
	if err := n.Resize("p1", 200); err != nil {
		t.Fatalf("shrink rejected: %v", err)
	}
	if got := n.OversubscribedPaths(); len(got) != 0 {
		t.Fatalf("still oversubscribed: %v", got)
	}
}

func TestOversubscribedPathsIgnoresDownLinks(t *testing.T) {
	n := testNet(t)
	n.Reserve("p1", []string{"enb1", "sw1"}, 800)
	n.SetLinkCapacity("enb1", "sw1", 100)
	n.SetLinkUp("enb1", "sw1", false)
	if got := n.OversubscribedPaths(); len(got) != 0 {
		t.Fatalf("down link reported oversubscribed: %v", got)
	}
}

func TestRecoveredCapacityRestoresResidual(t *testing.T) {
	n := testNet(t)
	n.Reserve("p1", []string{"enb1", "sw1"}, 500)
	n.SetLinkCapacity("enb1", "sw1", 400)
	n.SetLinkCapacity("enb1", "sw1", 1000)
	l, _ := n.Link("enb1", "sw1")
	if l.ResidualMbps() != 500 {
		t.Fatalf("residual %.1f after recovery", l.ResidualMbps())
	}
}
