package transport

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// testNet builds a small testbed-like topology:
//
//	enb1 --mmWave--> sw1 --wired--> edge
//	enb2 --µWave--> sw1 --wired--> core
//	enb1 --µWave--> sw2 --wired--> core   (alternate, slower)
//	sw1 <--wired--> sw2
func testNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, nd := range []struct {
		name string
		kind NodeKind
	}{
		{"enb1", KindENB}, {"enb2", KindENB},
		{"sw1", KindSwitch}, {"sw2", KindSwitch},
		{"edge", KindDC}, {"core", KindDC},
	} {
		if err := n.AddNode(nd.name, nd.kind); err != nil {
			t.Fatal(err)
		}
	}
	add := func(a, b string, lt LinkType, cap, delay float64) {
		t.Helper()
		if err := n.AddBiLink(a, b, lt, cap, delay); err != nil {
			t.Fatal(err)
		}
	}
	add("enb1", "sw1", MmWave, 1000, 0.5)
	add("enb2", "sw1", MicroWave, 300, 1.0)
	add("enb1", "sw2", MicroWave, 300, 2.0)
	add("sw1", "sw2", Wired, 10000, 0.2)
	add("sw1", "edge", Wired, 10000, 0.3)
	add("sw1", "core", Wired, 10000, 5.0)
	add("sw2", "core", Wired, 10000, 4.0)
	return n
}

func TestAddLinkValidation(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a", KindSwitch)
	if err := n.AddLink("a", "missing", Wired, 100, 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("link to unknown node: %v", err)
	}
	n.AddNode("b", KindSwitch)
	if err := n.AddLink("a", "b", Wired, 0, 1); err == nil {
		t.Fatal("zero-capacity link accepted")
	}
	if err := n.AddLink("a", "b", Wired, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddLink("a", "b", Wired, 100, 1); !errors.Is(err, ErrLinkExists) {
		t.Fatalf("duplicate link: %v", err)
	}
}

func TestAddNodeConflict(t *testing.T) {
	n := NewNetwork()
	n.AddNode("x", KindSwitch)
	if err := n.AddNode("x", KindSwitch); err != nil {
		t.Fatalf("idempotent re-add failed: %v", err)
	}
	if err := n.AddNode("x", KindDC); err == nil {
		t.Fatal("kind change accepted")
	}
	if err := n.AddNode("", KindSwitch); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestShortestPathPrefersLowDelay(t *testing.T) {
	n := testNet(t)
	p, err := n.ShortestPath(PathRequest{From: "enb1", To: "core", MinMbps: 50})
	if err != nil {
		t.Fatal(err)
	}
	// enb1->sw1->core = 5.5ms beats enb1->sw2->core = 6.0 and
	// enb1->sw1->sw2->core = 4.7? 0.5+0.2+4.0 = 4.7 — actually best.
	if math.Abs(p.DelayMs-4.7) > 1e-9 {
		t.Fatalf("delay %.2f hops %v", p.DelayMs, p.Hops)
	}
	want := []string{"enb1", "sw1", "sw2", "core"}
	if !equalHops(p.Hops, want) {
		t.Fatalf("hops %v, want %v", p.Hops, want)
	}
}

func TestShortestPathBandwidthPruning(t *testing.T) {
	n := testNet(t)
	// Demand above µWave capacity must avoid enb2's only link.
	if _, err := n.ShortestPath(PathRequest{From: "enb2", To: "edge", MinMbps: 500}); !errors.Is(err, ErrNoPath) {
		t.Fatalf("infeasible bandwidth: %v", err)
	}
	p, err := n.ShortestPath(PathRequest{From: "enb2", To: "edge", MinMbps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if p.BottleneckMbps != 300 {
		t.Fatalf("bottleneck %.0f", p.BottleneckMbps)
	}
}

func TestShortestPathDelayBudget(t *testing.T) {
	n := testNet(t)
	if _, err := n.ShortestPath(PathRequest{From: "enb1", To: "core", MinMbps: 10, MaxDelayMs: 2}); !errors.Is(err, ErrDelayBudget) {
		t.Fatalf("tight budget: %v", err)
	}
	if _, err := n.ShortestPath(PathRequest{From: "enb1", To: "edge", MinMbps: 10, MaxDelayMs: 1}); err != nil {
		t.Fatalf("edge within 1ms should work: %v", err)
	}
}

func TestShortestPathUnknownNodes(t *testing.T) {
	n := testNet(t)
	if _, err := n.ShortestPath(PathRequest{From: "nope", To: "core"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatal(err)
	}
	if _, err := n.ShortestPath(PathRequest{From: "enb1", To: "nope"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatal(err)
	}
}

func TestReserveLifecycle(t *testing.T) {
	n := testNet(t)
	r, err := n.ReservePath("slice-1/dl", PathRequest{From: "enb1", To: "edge", MinMbps: 400})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mbps != 400 || len(r.Hops) != 3 {
		t.Fatalf("reservation %+v", r)
	}
	l, _ := n.Link("enb1", "sw1")
	if l.ReservedMbps() != 400 || l.ResidualMbps() != 600 {
		t.Fatalf("link accounting %+v", l)
	}
	if err := n.Resize("slice-1/dl", 700); err != nil {
		t.Fatal(err)
	}
	l, _ = n.Link("enb1", "sw1")
	if l.ResidualMbps() != 300 {
		t.Fatalf("residual after resize %.0f", l.ResidualMbps())
	}
	n.Release("slice-1/dl")
	l, _ = n.Link("enb1", "sw1")
	if l.ReservedMbps() != 0 {
		t.Fatalf("residual after release %.0f", l.ReservedMbps())
	}
	n.Release("slice-1/dl") // idempotent
}

func TestReserveAtomicity(t *testing.T) {
	n := testNet(t)
	// Saturate sw1->edge so that a path through it fails *after* the first
	// link would have been debitable.
	if _, err := n.Reserve("filler", []string{"sw1", "edge"}, 10000); err != nil {
		t.Fatal(err)
	}
	_, err := n.Reserve("victim", []string{"enb1", "sw1", "edge"}, 100)
	if !errors.Is(err, ErrInsufficientBW) {
		t.Fatalf("expected bandwidth error, got %v", err)
	}
	l, _ := n.Link("enb1", "sw1")
	if l.ReservedMbps() != 0 {
		t.Fatalf("failed reserve leaked %.0f Mbps on first hop", l.ReservedMbps())
	}
}

func TestReserveDuplicateID(t *testing.T) {
	n := testNet(t)
	if _, err := n.Reserve("p", []string{"enb1", "sw1"}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Reserve("p", []string{"enb1", "sw1"}, 10); !errors.Is(err, ErrDuplicatePath) {
		t.Fatalf("duplicate path id: %v", err)
	}
}

func TestResizeFailureLeavesStateIntact(t *testing.T) {
	n := testNet(t)
	n.Reserve("a", []string{"enb2", "sw1"}, 200)
	n.Reserve("b", []string{"enb2", "sw1"}, 50)
	if err := n.Resize("a", 300); !errors.Is(err, ErrInsufficientBW) {
		t.Fatalf("oversize resize: %v", err)
	}
	r, _ := n.Reservation("a")
	if r.Mbps != 200 {
		t.Fatalf("failed resize mutated to %.0f", r.Mbps)
	}
	if err := n.Resize("missing", 10); !errors.Is(err, ErrUnknownPath) {
		t.Fatal(err)
	}
}

func TestFlowTableInstallRemove(t *testing.T) {
	n := testNet(t)
	n.Reserve("p1", []string{"enb1", "sw1", "edge"}, 10)
	ft := n.FlowTable("sw1")
	if len(ft) != 1 || ft[0].InPort != "enb1" || ft[0].OutPort != "edge" {
		t.Fatalf("flow table %+v", ft)
	}
	if len(n.FlowTable("enb1")) != 0 {
		t.Fatal("flow entry on non-switch node")
	}
	n.Release("p1")
	if len(n.FlowTable("sw1")) != 0 {
		t.Fatal("flow entry survived release")
	}
}

func TestLinkFailureReroutesAndLists(t *testing.T) {
	n := testNet(t)
	n.Reserve("p1", []string{"enb1", "sw1", "sw2", "core"}, 10)
	ids := n.PathsOverLink("sw1", "sw2")
	if len(ids) != 1 || ids[0] != "p1" {
		t.Fatalf("paths over link %v", ids)
	}
	if err := n.SetLinkUp("sw1", "sw2", false); err != nil {
		t.Fatal(err)
	}
	p, err := n.ShortestPath(PathRequest{From: "enb1", To: "core", MinMbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(p.Hops); i++ {
		if p.Hops[i] == "sw1" && p.Hops[i+1] == "sw2" {
			t.Fatalf("path uses dead link: %v", p.Hops)
		}
	}
	if err := n.SetLinkUp("x", "y", false); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestReserveOverDownLinkFails(t *testing.T) {
	n := testNet(t)
	n.SetLinkUp("enb1", "sw1", false)
	if _, err := n.Reserve("p", []string{"enb1", "sw1"}, 10); err == nil {
		t.Fatal("reserved over down link")
	}
}

func TestKShortestPathsDistinctAndOrdered(t *testing.T) {
	n := testNet(t)
	ps, err := n.KShortestPaths(PathRequest{From: "enb1", To: "core", MinMbps: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) < 2 {
		t.Fatalf("got %d paths", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].DelayMs < ps[i-1].DelayMs-1e-9 {
			t.Fatalf("paths not ordered by delay: %v", ps)
		}
		if equalHops(ps[i].Hops, ps[i-1].Hops) {
			t.Fatalf("duplicate path: %v", ps[i].Hops)
		}
	}
	// All must be loop-free.
	for _, p := range ps {
		seen := map[string]bool{}
		for _, h := range p.Hops {
			if seen[h] {
				t.Fatalf("loop in %v", p.Hops)
			}
			seen[h] = true
		}
	}
}

func TestKShortestRespectsDelayFilter(t *testing.T) {
	n := testNet(t)
	ps, err := n.KShortestPaths(PathRequest{From: "enb1", To: "core", MinMbps: 10, MaxDelayMs: 5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if p.DelayMs > 5+1e-9 {
			t.Fatalf("path %v delay %.2f over budget", p.Hops, p.DelayMs)
		}
	}
}

func TestUtilizationAggregates(t *testing.T) {
	n := testNet(t)
	mean, max := n.Utilization()
	if mean != 0 || max != 0 {
		t.Fatal("fresh network utilised")
	}
	n.Reserve("p", []string{"enb2", "sw1"}, 300) // saturates the 300 link
	_, max = n.Utilization()
	if math.Abs(max-1.0) > 1e-9 {
		t.Fatalf("max util %.2f", max)
	}
}

func TestNodesOfKind(t *testing.T) {
	n := testNet(t)
	dcs := n.NodesOfKind(KindDC)
	if len(dcs) != 2 || dcs[0] != "core" || dcs[1] != "edge" {
		t.Fatalf("DCs %v", dcs)
	}
	if got := len(n.NodesOfKind(KindSwitch)); got != 2 {
		t.Fatalf("switches %d", got)
	}
	if got := len(n.Nodes()); got != 6 {
		t.Fatalf("nodes %d", got)
	}
}

func TestSnapshotSortedComplete(t *testing.T) {
	n := testNet(t)
	snap := n.Snapshot()
	if len(snap) != 14 { // 7 bidirectional links
		t.Fatalf("snapshot has %d links", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a := snap[i-1].From + "->" + snap[i-1].To
		b := snap[i].From + "->" + snap[i].To
		if a >= b {
			t.Fatalf("snapshot unsorted: %s then %s", a, b)
		}
	}
}

// Property: total reserved bandwidth on every link equals the sum over the
// reservations crossing it, after arbitrary reserve/release interleavings.
func TestPropertyReservationConservation(t *testing.T) {
	f := func(ops []struct {
		Release bool
		Mbps    uint8
	}) bool {
		n := testNet(t)
		var ids []string
		total := map[string]float64{}
		for i, op := range ops {
			if op.Release && len(ids) > 0 {
				id := ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				r, _ := n.Reservation(id)
				for j := 0; j+1 < len(r.Hops); j++ {
					total[r.Hops[j]+"->"+r.Hops[j+1]] -= r.Mbps
				}
				n.Release(id)
				continue
			}
			mbps := float64(op.Mbps%50) + 1
			id := string(rune('a'+i%26)) + string(rune('0'+i/26))
			r, err := n.ReservePath(id, PathRequest{From: "enb1", To: "core", MinMbps: mbps})
			if err != nil {
				continue
			}
			ids = append(ids, id)
			for j := 0; j+1 < len(r.Hops); j++ {
				total[r.Hops[j]+"->"+r.Hops[j+1]] += mbps
			}
		}
		for key, want := range total {
			var from, to string
			for i := 0; i+2 < len(key); i++ {
				if key[i:i+2] == "->" {
					from, to = key[:i], key[i+2:]
					break
				}
			}
			l, ok := n.Link(from, to)
			if !ok || math.Abs(l.ReservedMbps()-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
