// Command slicectl is the CLI client for the orchestrator's REST API — the
// scriptable counterpart of the demo dashboard.
//
// Usage:
//
//	slicectl [-server http://localhost:8080] <command> [args]
//
// Commands:
//
//	request -tenant NAME -mbps N -latency MS -duration D -price EUR [-penalty EUR] [-class CLASS] [-edge]
//	list
//	get <slice-id>
//	delete <slice-id>
//	demand <slice-id> <mbps>
//	gain
//	topology
//	watch [-since SEQ] [-n COUNT] [-timeout D] [-tenant NAME] [-type EVENT]
//
// watch streams the orchestrator's ordered slice-lifecycle events over
// GET /api/v2/events (Server-Sent Events) instead of polling list: it
// prints admissions, rejections, installs, overbooking resizes, SLA
// violations, expiries and link failures as they happen, resuming from the
// last seen sequence number across connection drops.
//
// Against a federated daemon (orchestrator -federation N) the multi-cluster
// commands drive the /api/v2/federation/ surface:
//
//	clusters                          member registry and federation-tier books
//	request -federated [-cluster C]   submit a federated span (prints its legs)
//	explain -mbps N -latency MS       placement dry-run: per-member verdicts
//	spans                             live spans with their legs
//	get|delete f-<n>                  span IDs ("f-" prefix) route to the
//	                                  federation endpoints automatically
//	gain -federated                   aggregate + per-cluster gain reports
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/restapi"
	"repro/internal/slice"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "orchestrator base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := restapi.NewClient(*server)
	var err error
	switch args[0] {
	case "request":
		err = cmdRequest(c, args[1:])
	case "list":
		err = cmdList(c)
	case "get":
		err = withID(args[1:], func(id slice.ID) error {
			if isSpanID(id) {
				return cmdGetSpan(c, id)
			}
			return cmdGet(c, id)
		})
	case "delete":
		err = withID(args[1:], func(id slice.ID) error {
			if isSpanID(id) {
				return c.DeleteSpan(id)
			}
			return c.DeleteSlice(id)
		})
	case "demand":
		err = cmdDemand(c, args[1:])
	case "gain":
		err = cmdGain(c, args[1:])
	case "clusters":
		err = cmdClusters(c)
	case "spans":
		err = cmdSpans(c)
	case "explain":
		err = cmdExplain(c, args[1:])
	case "topology":
		err = cmdTopology(c)
	case "watch":
		err = cmdWatch(c, args[1:])
	case "link":
		err = cmdLink(c, args[1:])
	case "template":
		err = cmdTemplate(c, args[1:])
	case "fleet":
		err = cmdFleet(c, args[1:])
	case "rollout":
		err = cmdRollout(c, args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: slicectl [-server URL] <request|list|get|delete|demand|gain|topology|watch|link|clusters|spans|explain> [args]
  watch [-since SEQ] [-n N] [-timeout D] [-tenant NAME] [-type EVENT]
                                   stream lifecycle events (SSE, auto-resume)
  link fail <from> <to>            take a transport link down (slices re-route or drop)
  link restore <from> <to>         bring it back up
  link degrade <from> <to> <mbps>  rain-fade the link to the given capacity
federated daemon (orchestrator -federation N):
  clusters                         member registry and federation-tier books
  request -federated [-cluster C]  submit a federated span (prints its legs)
  explain -mbps N -latency MS      placement dry-run: per-member verdicts
  spans                            live spans with their legs
  get|delete f-<n>                 span IDs route to the federation endpoints
  gain -federated                  aggregate + per-cluster gain reports
intent plane (templates / fleets / rollouts):
  template create -name N -mbps M -latency L -duration D -price P [-provision F]
  template publish NAME:VERSION    run guardrails, promote draft to published
  template dryrun NAME:VERSION     server-side feasibility check, nothing reserved
  template list|get NAME:VERSION
  fleet create -template NAME:VERSION -tenants a,b -regions core,edge [-policy P]
  fleet list|get <fleet-id>
  rollout start -fleet F -to V [-canary 0.25] [-window 5m] [-max-violations 0]
  rollout list|get <rollout-id>`)
}

func cmdWatch(c *restapi.Client, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	var (
		since   = fs.Int64("since", 0, "resume after this event sequence (0 = live tail, -1 = replay retained history)")
		count   = fs.Int("n", 0, "exit after printing N events (0 = stream forever)")
		timeout = fs.Duration("timeout", 0, "exit after this long (0 = stream forever)")
		tenant  = fs.String("tenant", "", "only this tenant's events")
		typ     = fs.String("type", "", "only this event type (e.g. admitted, violation, deleted)")
	)
	fs.Parse(args)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	p := restapi.WatchParams{Since: *since}
	if *tenant != "" {
		p.Tenants = []string{*tenant}
	}
	if *typ != "" {
		p.Types = []core.EventType{core.EventType(*typ)}
	}
	n := 0
	err := c.WatchEvents(ctx, p, func(ev core.Event) error {
		printEvent(ev)
		n++
		if *count > 0 && n >= *count {
			return restapi.ErrStopWatch
		}
		return nil
	})
	if *timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
		return nil // ran out the requested window: a clean exit
	}
	return err
}

func printEvent(ev core.Event) {
	line := fmt.Sprintf("%s  #%-6d %-13s", ev.Time.Format(time.RFC3339), ev.Seq, ev.Type)
	if ev.Slice != "" {
		line += fmt.Sprintf(" %-6s tenant=%s state=%s", ev.Slice, ev.Tenant, ev.State)
		if ev.Mbps > 0 {
			line += fmt.Sprintf(" alloc=%.1fMbps", ev.Mbps)
		}
		if ev.RejectCode != "" {
			line += fmt.Sprintf(" [%s]", ev.RejectCode)
		}
	}
	if ev.Link != "" {
		line += " link=" + ev.Link
	}
	if ev.Detail != "" {
		line += "  " + ev.Detail
	}
	fmt.Println(line)
}

func cmdLink(c *restapi.Client, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: link <fail|restore|degrade> <from> <to> [mbps]")
	}
	op, from, to := args[0], args[1], args[2]
	switch op {
	case "fail":
		rep, err := c.FailLink(from, to)
		if err != nil {
			return err
		}
		fmt.Printf("link %s failed: restored %v, dropped %v\n", rep.Link, rep.Restored, rep.Dropped)
		return nil
	case "restore":
		if err := c.RestoreLink(from, to); err != nil {
			return err
		}
		fmt.Printf("link %s->%s restored\n", from, to)
		return nil
	case "degrade":
		if len(args) < 4 {
			return fmt.Errorf("usage: link degrade <from> <to> <mbps>")
		}
		var mbps float64
		if _, err := fmt.Sscanf(args[3], "%f", &mbps); err != nil {
			return fmt.Errorf("bad capacity %q", args[3])
		}
		rep, err := c.DegradeLink(from, to, mbps)
		if err != nil {
			return err
		}
		fmt.Printf("link %s degraded to %.0f Mbps: restored %v, dropped %v\n", rep.Link, mbps, rep.Restored, rep.Dropped)
		return nil
	default:
		return fmt.Errorf("unknown link op %q", op)
	}
}

func withID(args []string, fn func(slice.ID) error) error {
	if len(args) < 1 {
		return fmt.Errorf("slice ID required")
	}
	return fn(slice.ID(args[0]))
}

func cmdRequest(c *restapi.Client, args []string) error {
	fs := flag.NewFlagSet("request", flag.ExitOnError)
	var (
		tenant    = fs.String("tenant", "", "tenant name")
		mbps      = fs.Float64("mbps", 20, "expected throughput (Mbps)")
		latency   = fs.Float64("latency", 50, "maximum latency (ms)")
		duration  = fs.Duration("duration", time.Hour, "slice duration")
		price     = fs.Float64("price", 100, "price willing to pay (EUR)")
		penalty   = fs.Float64("penalty", 2, "penalty per SLA-violation epoch (EUR)")
		class     = fs.String("class", "eMBB", "service class: eMBB|automotive|e-health|mMTC")
		edge      = fs.Bool("edge", false, "require mobile-edge compute")
		federated = fs.Bool("federated", false, "submit to the federation tier (orchestrator -federation)")
		cluster   = fs.String("cluster", "", "pin the federated span to this member cluster (implies -federated)")
		demand    = fs.Float64("demand", 0, "federated mean offered demand in Mbps (default 0.6 x -mbps)")
		idemKey   = fs.String("idempotency-key", "", "Idempotency-Key header for the federated submit")
	)
	fs.Parse(args)
	body := restapi.SliceRequestBody{
		Tenant:          *tenant,
		ThroughputMbps:  *mbps,
		MaxLatencyMs:    *latency,
		DurationSeconds: duration.Seconds(),
		PriceEUR:        *price,
		PenaltyEUR:      *penalty,
		Class:           *class,
		EdgeCompute:     *edge,
	}
	if *federated || *cluster != "" {
		st, err := c.SubmitSpan(restapi.FedSliceRequestBody{
			SliceRequestBody: body,
			Cluster:          *cluster,
			MeanDemandMbps:   *demand,
		}, *idemKey)
		if err != nil {
			return err
		}
		printSpan(st)
		return nil
	}
	snap, err := c.SubmitSlice(body)
	if err != nil {
		return err
	}
	if snap.State == "rejected" {
		fmt.Printf("REJECTED %s [%s]: %s\n", snap.ID, snap.RejectCode, snap.Reason)
		return nil
	}
	fmt.Printf("accepted %s: state=%s plmn=%s dc=%s\n",
		snap.ID, snap.State, snap.Allocation.PLMN, snap.Allocation.DataCenter)
	return nil
}

// isSpanID reports whether the ID names a federated span ("f-<seq>") rather
// than a member-local slice ("s-<seq>"), so get/delete can route to the
// right API surface without a flag.
func isSpanID(id slice.ID) bool { return strings.HasPrefix(string(id), "f-") }

func printSpan(st federation.SpanStatus) {
	if st.State == "rejected" {
		fmt.Printf("REJECTED %s [%s]: %s\n", st.ID, st.RejectCode, st.Reason)
		return
	}
	fmt.Printf("accepted span %s: state=%s legs=%d expires=%s\n",
		st.ID, st.State, len(st.Legs), st.Expires.Format(time.RFC3339))
	for _, leg := range st.Legs {
		fmt.Printf("  leg %-12s %8.1f Mbps  slice=%s\n", leg.Cluster, leg.Mbps, leg.Slice)
	}
}

func cmdGetSpan(c *restapi.Client, id slice.ID) error {
	st, err := c.GetSpan(id)
	if err != nil {
		return err
	}
	printSpan(st)
	return nil
}

func cmdClusters(c *restapi.Client) error {
	infos, err := c.FedClusters()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CLUSTER\tLOCATION\tLATENCY\tSTATE\tADVERTISED\tHEADROOM\tRESERVED\tLEDGER\tEPOCH\tSLICES")
	for _, ci := range infos {
		state := "alive"
		switch {
		case ci.Failed:
			state = "FAILED"
		case ci.Partitioned:
			state = "partitioned"
		}
		fmt.Fprintf(w, "%s\t%s\t%.1fms\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
			ci.Name, ci.Location, ci.LatencyMs, state,
			ci.AdvertisedMbps, ci.HeadroomMbps, ci.ReservedMbps, ci.LedgerMbps,
			ci.Epoch, ci.ActiveSlices)
	}
	return w.Flush()
}

func cmdSpans(c *restapi.Client) error {
	spans, err := c.ListSpans()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SPAN\tTENANT\tSTATE\tLEGS\tPLACEMENT\tEXPIRES")
	for _, st := range spans {
		placement := make([]string, 0, len(st.Legs))
		for _, leg := range st.Legs {
			placement = append(placement, fmt.Sprintf("%s:%.1f", leg.Cluster, leg.Mbps))
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\t%s\n",
			st.ID, st.Tenant, st.State, len(st.Legs),
			strings.Join(placement, " "), st.Expires.Format(time.RFC3339))
	}
	return w.Flush()
}

func cmdExplain(c *restapi.Client, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	var (
		mbps     = fs.Float64("mbps", 20, "expected throughput (Mbps)")
		latency  = fs.Float64("latency", 50, "maximum latency (ms)")
		duration = fs.Duration("duration", time.Hour, "slice duration")
		price    = fs.Float64("price", 100, "price willing to pay (EUR)")
		class    = fs.String("class", "eMBB", "service class: eMBB|automotive|e-health|mMTC")
		cluster  = fs.String("cluster", "", "pin to this member cluster")
	)
	fs.Parse(args)
	ex, err := c.ExplainPlacement(restapi.FedSliceRequestBody{
		SliceRequestBody: restapi.SliceRequestBody{
			ThroughputMbps:  *mbps,
			MaxLatencyMs:    *latency,
			DurationSeconds: duration.Seconds(),
			PriceEUR:        *price,
			Class:           *class,
		},
		Cluster: *cluster,
	})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "CLUSTER\tLOCATION\tLATENCY\tHEADROOM\tELIGIBLE\tREASON")
	for _, cand := range ex.Candidates {
		fmt.Fprintf(w, "%s\t%s\t%.1fms\t%.1f\t%v\t%s\n",
			cand.Cluster, cand.Location, cand.LatencyMs, cand.HeadroomMbps,
			cand.Eligible, cand.Reason)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if !ex.Placed {
		fmt.Printf("NOT PLACEABLE [%s]: %s\n", ex.RejectCode, ex.Reason)
		return nil
	}
	legs := make([]string, 0, len(ex.Legs))
	for _, leg := range ex.Legs {
		legs = append(legs, fmt.Sprintf("%s:%.1f Mbps", leg.Cluster, leg.Mbps))
	}
	fmt.Printf("placeable: %s\n", strings.Join(legs, " + "))
	return nil
}

func cmdList(c *restapi.Client) error {
	ls, err := c.ListSlices()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tTENANT\tCLASS\tSTATE\tCONTRACT\tALLOCATED\tNET€\tCAUSE\tREASON")
	for _, s := range ls {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f\t%.1f\t%.2f\t%s\t%s\n",
			s.ID, s.Tenant, s.Class, s.State,
			s.SLA.ThroughputMbps, s.Allocation.AllocatedMbps, s.Accounting.NetEUR, s.RejectCode, s.Reason)
	}
	return w.Flush()
}

func cmdGet(c *restapi.Client, id slice.ID) error {
	s, err := c.GetSlice(id)
	if err != nil {
		return err
	}
	fmt.Printf("slice %s (%s, %s)\n", s.ID, s.Tenant, s.Class)
	if s.RejectCode != "" {
		fmt.Printf("  state      %s [%s] %s\n", s.State, s.RejectCode, s.Reason)
	} else {
		fmt.Printf("  state      %s %s\n", s.State, s.Reason)
	}
	fmt.Printf("  contract   %.1f Mbps, <=%.1f ms, until %s\n", s.SLA.ThroughputMbps, s.SLA.MaxLatencyMs, s.Expires.Format(time.RFC3339))
	fmt.Printf("  allocated  %.1f Mbps (PLMN %s, DC %s, path %.2f ms)\n",
		s.Allocation.AllocatedMbps, s.Allocation.PLMN, s.Allocation.DataCenter, s.Allocation.PathLatencyMs)
	fmt.Printf("  accounting %+.2f EUR net (%d/%d violation epochs)\n",
		s.Accounting.NetEUR, s.Accounting.ViolationEpochs, s.Accounting.ServedEpochs)
	return nil
}

func cmdDemand(c *restapi.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: demand <slice-id> <mbps>")
	}
	var mbps float64
	if _, err := fmt.Sscanf(args[1], "%f", &mbps); err != nil {
		return fmt.Errorf("bad mbps %q", args[1])
	}
	return c.RecordDemand(slice.ID(args[0]), mbps)
}

func cmdGain(c *restapi.Client, args []string) error {
	fs := flag.NewFlagSet("gain", flag.ExitOnError)
	federated := fs.Bool("federated", false, "federation-wide aggregate + per-cluster reports")
	fs.Parse(args)
	if *federated {
		rep, err := c.FedGain()
		if err != nil {
			return err
		}
		g := rep.Aggregate
		fmt.Printf("federated multiplexing gain %.2fx  overbooking %.2fx (contracted %.1f / capacity %.1f Mbps)\n",
			g.MultiplexingGain, g.OverbookingRatio, g.ContractedMbps, g.CapacityMbps)
		fmt.Printf("slices %d active, %d admitted, %d rejected  net %.2f EUR\n",
			g.Active, g.Admitted, g.Rejected, g.NetRevenueEUR)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "CLUSTER\tGAIN\tRATIO\tACTIVE\tADMITTED\tREJECTED\tNET€")
		for _, cg := range rep.Clusters {
			fmt.Fprintf(w, "%s\t%.2fx\t%.2fx\t%d\t%d\t%d\t%.2f\n",
				cg.Cluster, cg.Gain.MultiplexingGain, cg.Gain.OverbookingRatio,
				cg.Gain.Active, cg.Gain.Admitted, cg.Gain.Rejected, cg.Gain.NetRevenueEUR)
		}
		return w.Flush()
	}
	g, err := c.Gain()
	if err != nil {
		return err
	}
	fmt.Printf("multiplexing gain   %.2fx\n", g.MultiplexingGain)
	fmt.Printf("overbooking ratio   %.2fx (contracted %.1f / capacity %.1f Mbps)\n",
		g.OverbookingRatio, g.ContractedMbps, g.CapacityMbps)
	fmt.Printf("slices              %d active, %d admitted, %d rejected\n", g.Active, g.Admitted, g.Rejected)
	fmt.Printf("revenue             %.2f EUR  penalties %.2f EUR  net %.2f EUR\n",
		g.RevenueTotalEUR, g.PenaltyTotalEUR, g.NetRevenueEUR)
	fmt.Printf("violations          %d epochs, %d reconfigurations, %d control epochs\n",
		g.ViolationEpochs, g.Reconfigurations, g.Epochs)
	return nil
}

func cmdTopology(c *restapi.Client) error {
	links, err := c.Topology()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "FROM\tTO\tTYPE\tCAPACITY\tRESERVED\tDELAY\tUP")
	for _, l := range links {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.0f\t%.1f\t%.2fms\t%v\n",
			l.From, l.To, l.Type, l.CapacityMbps, l.ReservedMbps, l.DelayMs, l.Up)
	}
	return w.Flush()
}
