package main

// The intent-plane commands: versioned templates, server-side dry-run,
// fleet instantiation and canary rollouts (orchestrator daemon only; the
// routes are mounted by restapi.AttachIntent).

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/intent"
	"repro/internal/restapi"
)

// templateFlags declares the shared template-contract flags on fs; the
// returned duration pointer holds -duration after Parse.
func templateFlags(fs *flag.FlagSet) (*restapi.TemplateBody, *time.Duration) {
	var b restapi.TemplateBody
	fs.StringVar(&b.Name, "name", "", "template name")
	fs.Float64Var(&b.ThroughputMbps, "mbps", 20, "contracted throughput (Mbps)")
	fs.Float64Var(&b.MaxLatencyMs, "latency", 50, "maximum end-to-end latency (ms)")
	dur := fs.Duration("duration", time.Hour, "instance lifetime")
	fs.Float64Var(&b.PriceEUR, "price", 100, "price (EUR)")
	fs.Float64Var(&b.PenaltyEUR, "penalty", 2, "penalty per violation epoch (EUR)")
	fs.StringVar(&b.Class, "class", "eMBB", "service class (eMBB, automotive, e-health, mMTC)")
	fs.Float64Var(&b.ProvisionFraction, "provision", 0, "provisioning fraction of contract ((0,1], default 1)")
	return &b, dur
}

// templateRefArg parses a NAME:VERSION argument.
func templateRefArg(arg string) (string, int, error) {
	name, ver, ok := strings.Cut(arg, ":")
	if !ok {
		return "", 0, fmt.Errorf("want NAME:VERSION, got %q", arg)
	}
	v, err := strconv.Atoi(ver)
	if err != nil || v < 1 {
		return "", 0, fmt.Errorf("bad version in %q", arg)
	}
	return name, v, nil
}

func cmdTemplate(c *restapi.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: template <create|update|publish|get|list|dryrun> ...")
	}
	switch args[0] {
	case "create", "update":
		fs := flag.NewFlagSet("template "+args[0], flag.ExitOnError)
		body, dur := templateFlags(fs)
		version := fs.Int("version", 0, "draft version to update (update only)")
		fs.Parse(args[1:])
		body.DurationSeconds = dur.Seconds()
		var (
			t   intent.Template
			err error
		)
		if args[0] == "create" {
			t, err = c.CreateTemplate(*body)
		} else {
			t, err = c.UpdateTemplate(body.Name, *version, *body)
		}
		if err != nil {
			return err
		}
		printTemplate(t)
		return nil
	case "publish":
		if len(args) < 2 {
			return fmt.Errorf("usage: template publish NAME:VERSION")
		}
		name, ver, err := templateRefArg(args[1])
		if err != nil {
			return err
		}
		t, err := c.PublishTemplate(name, ver)
		if err != nil {
			return err
		}
		printTemplate(t)
		return nil
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("usage: template get NAME:VERSION")
		}
		name, ver, err := templateRefArg(args[1])
		if err != nil {
			return err
		}
		t, err := c.GetTemplate(name, ver)
		if err != nil {
			return err
		}
		printTemplate(t)
		return nil
	case "list":
		ts, err := c.ListTemplates()
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "NAME\tVER\tSTATE\tMBPS\tLATENCY\tDURATION\tPRICE\tPROVISION")
		for _, t := range ts {
			fmt.Fprintf(w, "%s\t%d\t%s\t%.0f\t%.1f\t%s\t%.2f\t%.2f\n",
				t.Name, t.Version, t.State, t.ThroughputMbps, t.MaxLatencyMs, t.Duration, t.PriceEUR, t.ProvisionFraction)
		}
		return w.Flush()
	case "dryrun":
		if len(args) < 2 {
			return fmt.Errorf("usage: template dryrun NAME:VERSION [-tenant T] [-region core|edge]")
		}
		name, ver, err := templateRefArg(args[1])
		if err != nil {
			return err
		}
		fs := flag.NewFlagSet("template dryrun", flag.ExitOnError)
		tenant := fs.String("tenant", "dryrun", "tenant to evaluate for")
		region := fs.String("region", "core", "placement region (core or edge)")
		fs.Parse(args[2:])
		rep, err := c.DryRunTemplate(name, ver, *tenant, *region)
		if err != nil {
			return err
		}
		printDryRun(rep)
		return nil
	default:
		return fmt.Errorf("unknown template subcommand %q", args[0])
	}
}

func printTemplate(t intent.Template) {
	fmt.Printf("template %s v%d [%s] %.0f Mbps, latency<=%.1fms, %s, %.2f EUR (penalty %.2f), provision %.2f\n",
		t.Name, t.Version, t.State, t.ThroughputMbps, t.MaxLatencyMs, t.Duration, t.PriceEUR, t.PenaltyEUR, t.ProvisionFraction)
}

func printDryRun(rep core.DryRunReport) {
	if rep.Feasible {
		fmt.Printf("feasible: yes  datacenter=%s  est=%.1fMbps  ledger=%.1f/%.1fMbps\n",
			rep.DataCenter, rep.EstimatedLoadMbps, rep.LedgerLoadMbps, rep.CapacityMbps)
		return
	}
	fmt.Printf("feasible: NO [%s] %s  est=%.1fMbps  ledger=%.1f/%.1fMbps\n",
		rep.RejectCode, rep.Detail, rep.EstimatedLoadMbps, rep.LedgerLoadMbps, rep.CapacityMbps)
}

func cmdFleet(c *restapi.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fleet <create|get|list> ...")
	}
	switch args[0] {
	case "create":
		fs := flag.NewFlagSet("fleet create", flag.ExitOnError)
		tpl := fs.String("template", "", "published template as NAME:VERSION")
		tenants := fs.String("tenants", "", "comma-separated tenant names")
		regions := fs.String("regions", "core", "comma-separated regions (core,edge)")
		policy := fs.String("policy", "fcfs", "batch policy (fcfs, density, optimal)")
		key := fs.String("idempotency-key", "", "Idempotency-Key for safe retries")
		fs.Parse(args[1:])
		name, ver, err := templateRefArg(*tpl)
		if err != nil {
			return err
		}
		f, err := c.Instantiate(restapi.InstantiateBody{
			Template: name,
			Version:  ver,
			Tenants:  splitList(*tenants),
			Regions:  splitList(*regions),
			Policy:   *policy,
		}, *key)
		if err != nil {
			return err
		}
		printFleet(f)
		return nil
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("usage: fleet get <fleet-id>")
		}
		f, err := c.GetFleet(args[1])
		if err != nil {
			return err
		}
		printFleet(f)
		return nil
	case "list":
		fsList, err := c.ListFleets()
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ID\tTEMPLATE\tVER\tADMITTED\tREJECTED")
		for _, f := range fsList {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\n", f.ID, f.Template, f.Version, f.Admitted, f.Rejected)
		}
		return w.Flush()
	default:
		return fmt.Errorf("unknown fleet subcommand %q", args[0])
	}
}

func printFleet(f intent.Fleet) {
	fmt.Printf("fleet %s: %s v%d, %d admitted / %d rejected\n", f.ID, f.Template, f.Version, f.Admitted, f.Rejected)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  SLICE\tTENANT\tREGION\tADMITTED\tREJECT")
	for _, m := range f.Members {
		fmt.Fprintf(w, "  %s\t%s\t%s\t%v\t%s\n", m.Slice, m.Tenant, m.Region, m.Admitted, m.RejectCode)
	}
	w.Flush()
}

func cmdRollout(c *restapi.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: rollout <start|get|list> ...")
	}
	switch args[0] {
	case "start":
		fs := flag.NewFlagSet("rollout start", flag.ExitOnError)
		fleet := fs.String("fleet", "", "fleet ID")
		to := fs.Int("to", 0, "target template version")
		frac := fs.Float64("canary", 0, "canary fraction (default 0.25)")
		window := fs.Duration("window", 0, "observation window (default 5m)")
		maxViol := fs.Int("max-violations", 0, "canary violations tolerated before rollback")
		key := fs.String("idempotency-key", "", "Idempotency-Key for safe retries")
		fs.Parse(args[1:])
		ro, err := c.StartRollout(restapi.RolloutBody{
			Fleet:          *fleet,
			ToVersion:      *to,
			CanaryFraction: *frac,
			WindowSeconds:  window.Seconds(),
			MaxViolations:  *maxViol,
		}, *key)
		if err != nil {
			return err
		}
		printRollout(ro)
		return nil
	case "get":
		if len(args) < 2 {
			return fmt.Errorf("usage: rollout get <rollout-id>")
		}
		ro, err := c.GetRollout(args[1])
		if err != nil {
			return err
		}
		printRollout(ro)
		return nil
	case "list":
		rs, err := c.ListRollouts()
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ID\tFLEET\tFROM\tTO\tPHASE\tCANARY\tVIOLATIONS\tREASON")
		for _, ro := range rs {
			fmt.Fprintf(w, "%s\t%s\tv%d\tv%d\t%s\t%d\t%d\t%s\n",
				ro.ID, ro.Fleet, ro.FromVersion, ro.ToVersion, ro.Phase, len(ro.Canary), ro.Violations, ro.Reason)
		}
		return w.Flush()
	default:
		return fmt.Errorf("unknown rollout subcommand %q", args[0])
	}
}

func printRollout(ro intent.Rollout) {
	fmt.Printf("rollout %s: fleet %s v%d->v%d [%s] canary %d/%d, window %s, %d violations",
		ro.ID, ro.Fleet, ro.FromVersion, ro.ToVersion, ro.Phase, len(ro.Canary), len(ro.Canary)+len(ro.Rest), ro.Window, ro.Violations)
	if ro.Reason != "" {
		fmt.Printf("  (%s)", ro.Reason)
	}
	fmt.Println()
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
