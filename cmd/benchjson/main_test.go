package main

import (
	"strings"
	"testing"
)

const transcript = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInstallTransaction/domains=3         	     300	     11718 ns/op	    5519 B/op	      85 allocs/op
BenchmarkParallelAdmission/shards=16-4        	     300	     14908 ns/op	    6443 B/op	     107 allocs/op
BenchmarkParallelAdmissionReject              	   10000	        68.37 ns/op	       0 B/op	       0 allocs/op
BenchmarkWatchFanout/subs=64                  	     100	     52000 ns/op	        3.01 events/op	   12000 B/op	     210 allocs/op
PASS
ok  	repro	0.031s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkParallelAdmission/shards=16" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.NsPerOp != 14908 || b.AllocsPerOp != 107 || b.BytesPerOp != 6443 {
		t.Fatalf("values: %+v", b)
	}
	if got := b.OpsPerSec; got < 67000 || got > 68000 {
		t.Fatalf("ops/sec: %v", got)
	}
	if rep.Benchmarks[2].NsPerOp != 68.37 {
		t.Fatalf("fractional ns/op: %+v", rep.Benchmarks[2])
	}
	if rep.Benchmarks[3].Extra["events/op"] != 3.01 {
		t.Fatalf("extra metric: %+v", rep.Benchmarks[3])
	}
}

func TestApplyBaseline(t *testing.T) {
	rep, err := Parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	prev := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkParallelAdmission/shards=16", NsPerOp: 88824, AllocsPerOp: 436},
	}}
	ApplyBaseline(&rep, prev, "BENCH_6.json")
	b := rep.Benchmarks[1]
	if b.Baseline == nil {
		t.Fatal("no baseline delta")
	}
	if b.Baseline.Speedup < 5.9 || b.Baseline.Speedup > 6.0 {
		t.Fatalf("speedup: %v", b.Baseline.Speedup)
	}
	if b.Baseline.AllocReduction < 0.75 {
		t.Fatalf("alloc reduction: %v", b.Baseline.AllocReduction)
	}
	if rep.Benchmarks[0].Baseline != nil {
		t.Fatal("unmatched benchmark got a baseline")
	}
}

func TestGate(t *testing.T) {
	rep := Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkFast", Baseline: &BaselineDelta{Speedup: 1.4}},
		{Name: "BenchmarkNoisy", Baseline: &BaselineDelta{Speedup: 0.80}},
		{Name: "BenchmarkRegressed", Baseline: &BaselineDelta{Speedup: 0.70}},
		{Name: "BenchmarkNew"}, // no baseline: must never gate
	}}
	if got := Gate(rep, 0.25); len(got) != 1 || got[0] != "BenchmarkRegressed" {
		t.Fatalf("gate at 25%%: %v", got)
	}
	// A 0.80 speedup is a 20% slowdown: inside a 25% gate, outside a 10% one.
	if got := Gate(rep, 0.10); len(got) != 2 {
		t.Fatalf("gate at 10%%: %v", got)
	}
	if got := Gate(rep, 0); got != nil {
		t.Fatalf("disabled gate flagged %v", got)
	}
}
