// Command benchjson turns `go test -bench -benchmem` output into the
// checked-in BENCH_*.json perf-trajectory files: one JSON document with the
// machine header, every benchmark's ns/op, B/op, allocs/op and derived
// ops/sec (admissions per second for the admission benchmarks), plus —
// when -baseline points at a previous BENCH_*.json — that file's numbers
// and the speedup factors against them, so each PR's file records both
// where the hot path is and where it came from.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -label "PR 8" \
//	    -baseline BENCH_7.json -out BENCH_8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// OpsPerSec is 1e9/ns_per_op — for the admission benchmarks this is
	// admissions per second.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Extra holds custom b.ReportMetric units (events/op, ...).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Baseline echoes the same benchmark from the -baseline file, with
	// speedup = baseline ns/op divided by current ns/op (>1 is faster) and
	// the alloc reduction as a fraction of the baseline (0.75 = 75% fewer).
	Baseline *BaselineDelta `json:"baseline,omitempty"`
}

// BaselineDelta compares a benchmark against the previous trajectory point.
type BaselineDelta struct {
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	Speedup        float64 `json:"speedup"`
	AllocReduction float64 `json:"alloc_reduction"`
}

// Report is the whole BENCH_*.json document.
type Report struct {
	Label        string `json:"label,omitempty"`
	Goos         string `json:"goos,omitempty"`
	Goarch       string `json:"goarch,omitempty"`
	Pkg          string `json:"pkg,omitempty"`
	CPU          string `json:"cpu,omitempty"`
	BaselineFrom string `json:"baseline_from,omitempty"`
	// Notes carries human context for this trajectory point: regression
	// verdicts, shared-runner caveats, measurement methodology.
	Notes []string `json:"notes,omitempty"`
	// GateThreshold and Regressions record the CI regression gate: any
	// benchmark whose speedup against the baseline fell below
	// 1-GateThreshold is listed in Regressions (and fails the build).
	GateThreshold float64     `json:"gate_threshold,omitempty"`
	Regressions   []string    `json:"regressions,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line; ok is false for headers,
// PASS/FAIL trailers and anything else that is not a result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix the testing package appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// The rest comes in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	if b.NsPerOp > 0 {
		b.OpsPerSec = 1e9 / b.NsPerOp
	}
	return b, true
}

// Parse reads a whole `go test -bench` transcript.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// ApplyBaseline fills each benchmark's Baseline from a previous report.
func ApplyBaseline(rep *Report, prev Report, from string) {
	byName := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		byName[b.Name] = b
	}
	rep.BaselineFrom = from
	for i := range rep.Benchmarks {
		cur := &rep.Benchmarks[i]
		base, ok := byName[cur.Name]
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		d := &BaselineDelta{NsPerOp: base.NsPerOp, AllocsPerOp: base.AllocsPerOp}
		if cur.NsPerOp > 0 {
			d.Speedup = base.NsPerOp / cur.NsPerOp
		}
		if base.AllocsPerOp > 0 {
			d.AllocReduction = 1 - cur.AllocsPerOp/base.AllocsPerOp
		}
		cur.Baseline = d
	}
}

// Gate returns the names of benchmarks whose speedup against the baseline
// fell below 1-threshold, i.e. regressed by more than the allowed fraction.
// Benchmarks without a baseline entry are never gated (new benchmarks must
// not fail the build that introduces them).
func Gate(rep Report, threshold float64) []string {
	if threshold <= 0 {
		return nil
	}
	var out []string
	for _, b := range rep.Benchmarks {
		if b.Baseline != nil && b.Baseline.Speedup > 0 && b.Baseline.Speedup < 1-threshold {
			out = append(out, b.Name)
		}
	}
	return out
}

// noteList collects repeated -note flags.
type noteList []string

func (n *noteList) String() string     { return strings.Join(*n, "; ") }
func (n *noteList) Set(v string) error { *n = append(*n, v); return nil }

func main() {
	in := flag.String("in", "-", "bench transcript to read (- for stdin)")
	out := flag.String("out", "-", "JSON file to write (- for stdout)")
	label := flag.String("label", "", "trajectory label recorded in the report (e.g. \"PR 7\")")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to diff against")
	gate := flag.Float64("gate", 0, "fail (exit 2) when any baselined benchmark slows down by more than this fraction (e.g. 0.25); the report is still written first")
	var notes noteList
	flag.Var(&notes, "note", "free-form note recorded in the report (repeatable)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var prev Report
		if err := json.Unmarshal(raw, &prev); err != nil {
			fatal(fmt.Errorf("parse baseline %s: %w", *baseline, err))
		}
		ApplyBaseline(&rep, prev, *baseline)
	}
	rep.Notes = notes
	rep.GateThreshold = *gate
	rep.Regressions = Gate(rep, *gate)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	// Gate AFTER the report is on disk: a failing build must still leave
	// the trajectory point for the regression investigation.
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s:\n",
			len(rep.Regressions), *gate*100, rep.BaselineFrom)
		for _, name := range rep.Regressions {
			fmt.Fprintln(os.Stderr, "  ", name)
		}
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
