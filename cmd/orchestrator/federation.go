package main

// The -federation N daemon mode: assemble N member clusters behind one
// federation tier on the wall clock and serve the /api/v2/federation/ REST
// surface. The single-cluster path in main.go is untouched; this file only
// runs when the flag is set.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	overbook "repro"
	"repro/internal/invariant"
	"repro/internal/restapi"
)

func runFederation(addr string, n int, seed int64, epoch time.Duration, audit bool) {
	fcfg := overbook.FederationConfig{
		Epoch: epoch,
		Audit: audit,
	}
	if audit {
		fcfg.AuditOnViolation = func(v invariant.Violation) {
			log.Printf("FEDERATION INVARIANT VIOLATION: %s", v)
		}
	}
	sys, err := overbook.NewLiveFederation(overbook.FederationOptions{
		Seed:       seed,
		Clusters:   overbook.DefaultFederationClusters(n),
		Federation: fcfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "orchestrator:", err)
		os.Exit(1)
	}
	sys.Federation.Start()

	api := restapi.NewFederationServer(sys.Federation)
	mux := http.NewServeMux()
	mux.Handle("/api/v2/federation/", api)
	mux.Handle("/healthz", api)

	log.Printf("federated slicing orchestrator listening on %s (clusters=%d epoch=%v audit=%v)",
		addr, n, epoch, audit)
	log.Printf("registry: http://localhost%s/api/v2/federation/clusters  spans: http://localhost%s/api/v2/federation/slices", addr, addr)

	srv := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("%s: shutting down", sig)
	}
	// Drain HTTP first so no in-flight submission races the barrier and
	// member control loops being cancelled, then stop the federation.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: http: %v", err)
	}
	sys.Federation.Stop()
}
