// Command orchestrator runs the end-to-end slicing orchestrator as a live
// daemon: the simulated testbed is managed on the wall clock, the REST API
// is served under /api/v1/ (poll) and /api/v2/ (filtered list, idempotent
// submit, SSE event stream), and the demo's control dashboard under /.
//
// Usage:
//
//	orchestrator [-addr :8080] [-overbook] [-risk 0.95] [-epoch 10s] [-seed 42] [-data-dir /var/lib/orch]
//
// With -data-dir the daemon keeps a write-ahead log: every admission,
// resize, teardown and control epoch is durable, and a restart rebuilds the
// slice registry by deterministic crash recovery (DESIGN.md §9) before
// serving — GET /api/v2/recovery reports the outcome. On SIGINT/SIGTERM the
// daemon publishes the terminal shutdown event to draining subscribers,
// flushes the log and exits cleanly.
//
// Then open http://localhost:8080/ for the dashboard, or drive it with
// slicectl (see cmd/slicectl).
//
// With -federation N the daemon instead runs the multi-cluster tier
// (DESIGN.md §11): N full member orchestrators behind one hierarchical
// capacity ledger, served under /api/v2/federation/ — cluster registry,
// federated span submission with Idempotency-Key dedup, placement explain,
// the merged member event stream and the aggregated gain report. Drive it
// with slicectl clusters / request -federated / explain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiler endpoints on the -pprof listener's DefaultServeMux
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	overbook "repro"
	"repro/internal/dashboard"
	"repro/internal/intent"
	"repro/internal/invariant"
	"repro/internal/restapi"
	"repro/internal/sim"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		doOver  = flag.Bool("overbook", true, "enable forecast-based overbooking")
		risk    = flag.Float64("risk", 0.95, "provisioning confidence (1.0 = peak provisioning)")
		epoch   = flag.Duration("epoch", 10*time.Second, "control loop period")
		seed    = flag.Int64("seed", 42, "testbed random seed")
		enbs    = flag.Int("enbs", 2, "number of eNBs in the testbed")
		plmnMax = flag.Int("plmn-limit", 6, "MOCN broadcast list size (max simultaneous slices)")
		mec     = flag.Int("mec-hosts", 0, "enable the edge MEC compute domain with this many hosts (0 = off)")
		audit   = flag.Bool("audit", false, "attach the cross-domain invariant auditor (DESIGN.md §8); violations are logged")
		dataDir = flag.String("data-dir", "", "write-ahead-log directory; enables durability and crash recovery (DESIGN.md §9)")
		fedN    = flag.Int("federation", 0, "run the multi-cluster federation tier with this many member clusters (0 = single-cluster daemon)")

		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		mutexFrac = flag.Int("pprof-mutex", 0, "mutex contention profile sampling fraction (runtime.SetMutexProfileFraction; 0 = off)")
		blockRate = flag.Int("pprof-block", 0, "blocking profile sampling rate in ns (runtime.SetBlockProfileRate; 0 = off)")
	)
	flag.Parse()

	// Profiling listener first so startup stalls (slow recovery, big WALs)
	// are themselves observable. Served on its own listener: the API address
	// can be exposed while the profiler stays on localhost. The group-commit
	// pipeline is diagnosed with the mutex and block profiles — followers
	// block on the commit ticket, the leader on fsync.
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	if *fedN > 0 {
		runFederation(*addr, *fedN, *seed, *epoch, *audit)
		return
	}

	cfg := overbook.OrchestratorConfig{
		Overbook:  *doOver,
		Risk:      *risk,
		Epoch:     *epoch,
		PLMNLimit: *plmnMax,
		Audit:     *audit,
	}
	if *audit {
		cfg.AuditOnViolation = func(v invariant.Violation) {
			log.Printf("INVARIANT VIOLATION: %s", v)
		}
	}
	opts := overbook.Options{
		Seed:         *seed,
		Orchestrator: &cfg,
		// MaxPLMNs follows the allocator limit so raising -plmn-limit
		// actually lifts the per-cell MOCN broadcast bound too.
		Testbed: overbook.TestbedConfig{ENBs: *enbs, MaxPLMNs: *plmnMax, MECHosts: *mec},
	}
	var (
		sys *overbook.System
		err error
	)
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "orchestrator:", err)
			os.Exit(1)
		}
		sys, err = overbook.NewLiveDurable(opts, *dataDir)
	} else {
		sys, err = overbook.NewLive(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "orchestrator:", err)
		os.Exit(1)
	}
	if st := sys.Orchestrator.PersistStatus(); st.Recovered && st.Recovery != nil {
		log.Printf("recovered from %s: snapshot seq %d, %d records replayed, %d live slices (torn_tail=%v clean_shutdown=%v)",
			*dataDir, st.Recovery.SnapshotSeq, st.Recovery.Replayed, st.Recovery.LiveSlices,
			st.Recovery.TornTail, st.Recovery.CleanShutdown)
	}
	sys.Orchestrator.Start()

	api := restapi.NewServer(sys.Orchestrator)
	api.AttachIntent(intent.NewManager(sys.Orchestrator, sim.NewRealtimeClock(), intent.Config{}))
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", api)
	mux.Handle("/api/v2/", api)
	mux.Handle("/healthz", api)
	mux.Handle("/", dashboard.New(sys.Orchestrator))

	log.Printf("end-to-end slicing orchestrator listening on %s (overbook=%v risk=%.2f epoch=%v durable=%v)",
		*addr, *doOver, *risk, *epoch, *dataDir != "")
	log.Printf("dashboard: http://localhost%s/  API: http://localhost%s/api/v1/slices  events: http://localhost%s/api/v2/events", *addr, *addr, *addr)

	srv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("%s: shutting down", sig)
	}
	// Ordering matters: publish the terminal EventShutdown and flush it
	// first — in-flight SSE drains observe the clean end of stream while
	// their connections are still up — then drain the HTTP server with the
	// WAL still open, so an in-flight mutation that is acknowledged with a
	// 200 is durably logged rather than lost to an already-closed file, and
	// close the log only once no handler can still be appending.
	ev := sys.Orchestrator.Shutdown()
	log.Printf("shutdown event seq %d published, wal flushed", ev.Seq)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: http: %v", err)
	}
	if err := sys.CloseWAL(); err != nil {
		log.Printf("shutdown: wal close: %v", err)
	}
}
