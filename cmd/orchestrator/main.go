// Command orchestrator runs the end-to-end slicing orchestrator as a live
// daemon: the simulated testbed is managed on the wall clock, the REST API
// is served under /api/v1/ (poll) and /api/v2/ (filtered list, idempotent
// submit, SSE event stream), and the demo's control dashboard under /.
//
// Usage:
//
//	orchestrator [-addr :8080] [-overbook] [-risk 0.95] [-epoch 10s] [-seed 42]
//
// Then open http://localhost:8080/ for the dashboard, or drive it with
// slicectl (see cmd/slicectl).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	overbook "repro"
	"repro/internal/dashboard"
	"repro/internal/invariant"
	"repro/internal/restapi"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		doOver  = flag.Bool("overbook", true, "enable forecast-based overbooking")
		risk    = flag.Float64("risk", 0.95, "provisioning confidence (1.0 = peak provisioning)")
		epoch   = flag.Duration("epoch", 10*time.Second, "control loop period")
		seed    = flag.Int64("seed", 42, "testbed random seed")
		enbs    = flag.Int("enbs", 2, "number of eNBs in the testbed")
		plmnMax = flag.Int("plmn-limit", 6, "MOCN broadcast list size (max simultaneous slices)")
		mec     = flag.Int("mec-hosts", 0, "enable the edge MEC compute domain with this many hosts (0 = off)")
		audit   = flag.Bool("audit", false, "attach the cross-domain invariant auditor (DESIGN.md §8); violations are logged")
	)
	flag.Parse()

	cfg := overbook.OrchestratorConfig{
		Overbook:  *doOver,
		Risk:      *risk,
		Epoch:     *epoch,
		PLMNLimit: *plmnMax,
		Audit:     *audit,
	}
	if *audit {
		cfg.AuditOnViolation = func(v invariant.Violation) {
			log.Printf("INVARIANT VIOLATION: %s", v)
		}
	}
	sys, err := overbook.NewLive(overbook.Options{
		Seed:         *seed,
		Orchestrator: &cfg,
		// MaxPLMNs follows the allocator limit so raising -plmn-limit
		// actually lifts the per-cell MOCN broadcast bound too.
		Testbed: overbook.TestbedConfig{ENBs: *enbs, MaxPLMNs: *plmnMax, MECHosts: *mec},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "orchestrator:", err)
		os.Exit(1)
	}
	sys.Orchestrator.Start()

	api := restapi.NewServer(sys.Orchestrator)
	mux := http.NewServeMux()
	mux.Handle("/api/v1/", api)
	mux.Handle("/api/v2/", api)
	mux.Handle("/healthz", api)
	mux.Handle("/", dashboard.New(sys.Orchestrator))

	log.Printf("end-to-end slicing orchestrator listening on %s (overbook=%v risk=%.2f epoch=%v)",
		*addr, *doOver, *risk, *epoch)
	log.Printf("dashboard: http://localhost%s/  API: http://localhost%s/api/v1/slices  events: http://localhost%s/api/v2/events", *addr, *addr, *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
