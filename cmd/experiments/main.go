// Command experiments regenerates every figure and demonstration claim of
// the paper (see DESIGN.md §4 and EXPERIMENTS.md): the Fig.-2 installation
// timeline, admission vs. load with and without overbooking, the dashboard
// gain/penalty series, forecaster accuracy, the overbooking risk trade-off,
// per-domain utilization, and latency-driven placement with the rejection
// histogram.
//
// Usage:
//
//	experiments [-seed 1] [-only f1,f2,d1,d2,d3,d4,d5,d6,d7,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/scenario"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for all experiments")
	only := flag.String("only", "", "comma-separated subset (f1,f2,d1,...)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }

	if run("f1") {
		expF1(*seed)
	}
	if run("f2") {
		expF2(*seed)
	}
	if run("d1") {
		expD1(*seed)
	}
	if run("d2") {
		expD2(*seed)
	}
	if run("d3") {
		expD3(*seed)
	}
	if run("d4") {
		expD4(*seed)
	}
	if run("d5") {
		expD5(*seed)
	}
	if run("d6") {
		expD6(*seed)
	}
	if run("d7") {
		expD7(*seed)
	}
	if run("d1b") {
		expD1b(*seed)
	}
	if run("r1") {
		expR1(*seed)
	}
	if run("a1") {
		expA1(*seed)
	}
	if run("a2") {
		expA2(*seed)
	}
	if run("a3") {
		expA3(*seed)
	}
	if run("a4") {
		expA4(*seed)
	}
	for _, name := range scenario.ChaosNames() {
		if run(name) {
			expChaos(name, *seed)
		}
	}
	if run("c9") {
		expC9(*seed)
	}
	for _, name := range scenario.FedChaosNames() {
		if run(name) {
			expFedChaos(name, *seed)
		}
	}
}

// expFedChaos runs one canned federated chaos scenario (c7, c8) — a
// multi-cluster failure drill with both audit tiers attached — and reports
// the federated workload outcome plus the merged audit verdict.
func expFedChaos(name string, seed int64) {
	header(strings.ToUpper(name), "federated chaos: "+scenario.FedChaosTitle(name))
	res, err := scenario.FedChaosScenario(name, seed)
	check(err)
	w := tw()
	fmt.Fprintf(w, "chaos steps fired\t%d\n", len(res.Steps))
	fmt.Fprintf(w, "offered / spans installed / rejected\t%d / %d / %d\n",
		res.Offered, res.Stats.SpansInstalled, res.Stats.SpansRejected)
	fmt.Fprintf(w, "cross-cluster spans / live at end\t%d / %d\n",
		res.Stats.SpansCrossCluster, res.Stats.SpansLive)
	fmt.Fprintf(w, "federation barriers\t%d\n", res.Stats.Barriers)
	fmt.Fprintf(w, "federated multiplexing gain\t%.2fx\n", res.Gain.MultiplexingGain)
	fmt.Fprintf(w, "federated net revenue\t%.0f EUR\n", res.Gain.NetRevenueEUR)
	for _, c := range res.Clusters {
		state := "alive"
		if c.Failed {
			state = "FAILED"
		} else if c.Partitioned {
			state = "partitioned"
		}
		fmt.Fprintf(w, "member %s (%s)\t%s, headroom %.0f / advertised %.0f Mbps, %d active slices\n",
			c.Name, c.Location, state, c.HeadroomMbps, c.AdvertisedMbps, c.ActiveSlices)
	}
	fmt.Fprintf(w, "audit sweeps / events checked\t%d / %d\n", res.AuditStats.Sweeps, res.AuditStats.Events)
	w.Flush()
	if len(res.Violations) == 0 {
		fmt.Println("invariants: CLEAN (federation conservation + every member's cross-domain auditor)")
		return
	}
	fmt.Printf("invariants: %d VIOLATION(S)\n", len(res.Violations))
	for i, v := range res.Violations {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

// expChaos runs one canned chaos scenario (c1..c6) with the invariant
// auditor attached and reports the workload outcome plus the audit verdict.
func expChaos(name string, seed int64) {
	header(strings.ToUpper(name), "chaos: "+scenario.ChaosTitle(name))
	res, err := scenario.ChaosScenario(name, seed)
	check(err)
	g := res.Result.Gain
	w := tw()
	fmt.Fprintf(w, "chaos steps fired\t%d\n", len(res.Steps))
	fmt.Fprintf(w, "offered / admitted / rejected\t%d / %d / %d\n", res.Result.Offered, g.Admitted, g.Rejected)
	fmt.Fprintf(w, "violation epochs / reconfigs\t%d / %d\n", g.ViolationEpochs, g.Reconfigurations)
	fmt.Fprintf(w, "multiplexing gain\t%.2fx\n", g.MultiplexingGain)
	fmt.Fprintf(w, "net revenue\t%.0f EUR\n", g.NetRevenueEUR)
	fmt.Fprintf(w, "audit sweeps / events checked\t%d / %d\n", res.AuditStats.Sweeps, res.AuditStats.Events)
	w.Flush()
	if len(res.Violations) == 0 {
		fmt.Println("invariants: CLEAN (ledger conservation, leak-freedom, event order, epoch monotonicity)")
		return
	}
	fmt.Printf("invariants: %d VIOLATION(S)\n", len(res.Violations))
	for i, v := range res.Violations {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

// expC9 runs the intent-plane canary-rollout drill (DESIGN.md §13): a
// fleet instantiated from a published template rides a benign rollout to
// promotion and an SLA-regressing one to automatic rollback, with the
// invariant auditor attached throughout. C9 always runs at its canonical
// seed — the timeline is calibrated so the fleet wins admission against
// the background churn; under other seeds the churn can starve the fleet
// out before the first rollout fires, which is a different (and already
// covered) failure drill.
func expC9(int64) {
	header("C9", "chaos: "+scenario.RolloutChaosTitle)
	res, err := scenario.RolloutChaosScenario(42, 0)
	check(err)
	g := res.Result.Gain
	w := tw()
	fmt.Fprintf(w, "fleet\t%s (%s v%d), %d admitted / %d rejected\n",
		res.Fleet.ID, res.Fleet.Template, res.Fleet.Version, res.Fleet.Admitted, res.Fleet.Rejected)
	fmt.Fprintf(w, "benign rollout\t%s v%d->v%d: %s, %d canary violations\n",
		res.Promoted.ID, res.Promoted.FromVersion, res.Promoted.ToVersion, res.Promoted.Phase, res.Promoted.Violations)
	fmt.Fprintf(w, "aggressive rollout\t%s v%d->v%d: %s, %d canary violations (%s)\n",
		res.RolledBack.ID, res.RolledBack.FromVersion, res.RolledBack.ToVersion, res.RolledBack.Phase, res.RolledBack.Violations, res.RolledBack.Reason)
	fmt.Fprintf(w, "violation epochs / reconfigs\t%d / %d\n", g.ViolationEpochs, g.Reconfigurations)
	fmt.Fprintf(w, "net revenue\t%.0f EUR\n", g.NetRevenueEUR)
	fmt.Fprintf(w, "audit sweeps / events checked\t%d / %d\n", res.AuditStats.Sweeps, res.AuditStats.Events)
	w.Flush()
	if len(res.Violations) == 0 {
		fmt.Println("invariants: CLEAN (ledger conservation, leak-freedom, event order, epoch monotonicity)")
		return
	}
	fmt.Printf("invariants: %d VIOLATION(S)\n", len(res.Violations))
	for i, v := range res.Violations {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(res.Violations)-i)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

// expA4 ablates penalty-aware admission at aggressive risk.
func expA4(seed int64) {
	header("A4", "ablation: penalty-aware revenue policy at aggressive risk")
	rows, err := scenario.PenaltyAwareAblation(seed)
	check(err)
	printAblation(rows)
	fmt.Println("(plain admission loses money at risk 0.75; penalty-aware rejects losing trades up front)")
}

// expD1b compares batch admission policies (the [3] broker objective).
func expD1b(seed int64) {
	header("D1b", "batch admission: FCFS vs revenue-density vs exact knapsack")
	rows, err := scenario.BatchPolicyComparison(seed)
	check(err)
	w := tw()
	fmt.Fprintln(w, "POLICY\tADMITTED\tREVENUE€")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.0f\n", r.Policy, r.Admitted, r.RevenueEUR)
	}
	w.Flush()
}

// expR1 demonstrates transport restoration after a link failure.
func expR1(seed int64) {
	header("R1", "link failure: restoration with and without the backup switch")
	rows, err := scenario.RestorationExperiment(seed)
	check(err)
	w := tw()
	fmt.Fprintln(w, "TOPOLOGY\tRESTORED\tDROPPED\tACTIVE-AFTER")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", r.Topology, r.Restored, r.Dropped, r.ActiveAfter)
	}
	w.Flush()
}

func printAblation(rows []scenario.AblationRow) {
	w := tw()
	fmt.Fprintln(w, "VARIANT\tADMITTED\tGAIN\tVIOL-RATE\tRECONFIGS\tNET€")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2fx\t%.3f\t%d\t%.0f\n",
			r.Variant, r.Admitted, r.MultiplexingGain, r.ViolationRate, r.Reconfigurations, r.NetEUR)
	}
	w.Flush()
}

// expA1 ablates the in-scheduler PRB sharing.
func expA1(seed int64) {
	header("A1", "ablation: lending idle reserved PRBs to saturated slices")
	rows, err := scenario.SchedulerSharingAblation(seed)
	check(err)
	printAblation(rows)
}

// expA2 ablates the forecaster driving the overbooking engine.
func expA2(seed int64) {
	header("A2", "ablation: forecaster inside the overbooking engine")
	rows, err := scenario.ForecasterAblation(seed)
	check(err)
	printAblation(rows)
}

// expA3 ablates the reconfiguration hysteresis threshold.
func expA3(seed int64) {
	header("A3", "ablation: reconfiguration hysteresis (churn vs freshness)")
	rows, err := scenario.HysteresisAblation(seed)
	check(err)
	printAblation(rows)
}

func header(id, title string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s — %s\n", id, title)
	fmt.Printf("================================================================\n")
}

func tw() *tabwriter.Writer { return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// expF1 walks one closed control-loop cycle (Fig. 1) on a loaded system and
// reports what each stage did.
func expF1(seed int64) {
	header("F1", "orchestrator closed loop (Fig. 1): one control cycle on a loaded system")
	r, err := scenario.LoadedRunner(seed, 6)
	check(err)
	before := r.Orch.Gain()
	start := time.Now()
	r.Orch.RunEpoch()
	elapsed := time.Since(start)
	after := r.Orch.Gain()
	fmt.Printf("stages: collect utilization -> monitor -> forecast/extract -> optimize -> reconfigure\n")
	fmt.Printf("active slices               %d\n", after.Active)
	fmt.Printf("reconfigurations this cycle %d\n", after.Reconfigurations-before.Reconfigurations)
	fmt.Printf("violations charged          %d\n", after.ViolationEpochs-before.ViolationEpochs)
	fmt.Printf("cycle wall time             %v (virtual time cost: 0 — control plane only)\n", elapsed)
	fmt.Printf("multiplexing gain after     %.2fx\n", after.MultiplexingGain)
}

// expF2 prints the Fig.-2 slice installation timeline.
func expF2(seed int64) {
	header("F2", "E2E testbed workflow (Fig. 2): slice installation timeline")
	rows, err := scenario.InstallTimelineRows(seed)
	check(err)
	w := tw()
	fmt.Fprintln(w, "T+\tSTAGE")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.2fs\t%s\n", r.At.Seconds(), r.Stage)
	}
	w.Flush()
	fmt.Printf("paper: \"After few seconds, user devices associated with the PLMN-id\n")
	fmt.Printf("of the new slices are allowed to connect\" — total %.1fs\n", rows[len(rows)-1].At.Seconds())
}

// expD1 sweeps offered load with and without overbooking.
func expD1(seed int64) {
	header("D1", "admission & revenue vs offered load: overbooking vs peak provisioning")
	ias := []time.Duration{40 * time.Minute, 20 * time.Minute, 10 * time.Minute, 5 * time.Minute}
	peak, err := scenario.AdmissionSweep(seed, ias, false)
	check(err)
	over, err := scenario.AdmissionSweep(seed, ias, true)
	check(err)
	w := tw()
	fmt.Fprintln(w, "MEAN-IA\tMODE\tOFFERED\tADMITTED\tADM-RATE\tREVENUE€\tPENALTY€\tNET€\tVIOL-RATE")
	for i := range ias {
		p, o := peak[i], over[i]
		fmt.Fprintf(w, "%v\tpeak\t%d\t%d\t%.2f\t%.0f\t%.0f\t%.0f\t%.3f\n",
			p.MeanInterarrival, p.Offered, p.Admitted, p.AdmissionRate, p.RevenueEUR, p.PenaltyEUR, p.NetEUR, p.ViolationRate)
		fmt.Fprintf(w, "%v\toverbook\t%d\t%d\t%.2f\t%.0f\t%.0f\t%.0f\t%.3f\n",
			o.MeanInterarrival, o.Offered, o.Admitted, o.AdmissionRate, o.RevenueEUR, o.PenaltyEUR, o.NetEUR, o.ViolationRate)
	}
	w.Flush()
}

// expD2 prints the dashboard gain/penalty time series.
func expD2(seed int64) {
	header("D2", "dashboard series: multiplexing gain vs accumulated penalties")
	pts, err := scenario.GainSeries(seed, 8*time.Hour, 30*time.Minute)
	check(err)
	w := tw()
	fmt.Fprintln(w, "T+\tGAIN\tOVERBOOK-RATIO\tPENALTIES€\tACTIVE")
	for _, p := range pts {
		fmt.Fprintf(w, "%5.1fh\t%.2fx\t%.2fx\t%.1f\t%.0f\n",
			p.At.Hours(), p.MultiplexingGain, p.OverbookingRatio, p.PenaltiesEUR, p.ActiveSlices)
	}
	w.Flush()
}

// expD3 prints the forecaster accuracy table.
func expD3(seed int64) {
	header("D3", "traffic forecasting accuracy on diurnal mobile load (ref [4])")
	rows := scenario.ForecastTable(seed)
	w := tw()
	fmt.Fprintln(w, "FORECASTER\tMAE\tRMSE\tMAPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.1f%%\n", r.Forecaster, r.MAE, r.RMSE, r.MAPE)
	}
	w.Flush()
}

// expD4 sweeps the overbooking risk.
func expD4(seed int64) {
	header("D4", "gain vs SLA-violation trade-off across overbooking risk")
	rows, err := scenario.RiskSweep(seed, []float64{1.0, 0.99, 0.95, 0.90, 0.80, 0.70, 0.60})
	check(err)
	w := tw()
	fmt.Fprintln(w, "RISK\tADMITTED\tGAIN\tVIOL-RATE\tREVENUE€\tPENALTY€\tNET€")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2f\t%d\t%.2fx\t%.3f\t%.0f\t%.0f\t%.0f\n",
			r.Risk, r.Admitted, r.MultiplexingGain, r.ViolationRate, r.RevenueEUR, r.PenaltyEUR, r.NetEUR)
	}
	w.Flush()
	fmt.Println("risk=1.00 is the no-overbooking baseline; lower risk = more aggressive overbooking")
}

// expD5 compares per-domain utilization.
func expD5(seed int64) {
	header("D5", "per-domain mean utilization: peak provisioning vs overbooking")
	rows, _, err := scenario.DomainUtilization(seed)
	check(err)
	w := tw()
	fmt.Fprintln(w, "DOMAIN\tPEAK-PROV\tOVERBOOK")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\n", r.Domain, r.PeakMeanUtil*100, r.OverbookUtil*100)
	}
	w.Flush()
	fmt.Println("(reserved radio per slice drops under overbooking while more slices run)")
}

// expD6 prints latency-driven placement plus the rejection histogram.
func expD6(seed int64) {
	header("D6", "latency-driven DC placement + rejection reasons under overload")
	rows, err := scenario.PlacementSplit(seed, []float64{100, 50, 20, 10, 4, 2, 0.5})
	check(err)
	w := tw()
	fmt.Fprintln(w, "MAX-LATENCY\tPLACEMENT\tREASON")
	for _, r := range rows {
		place := r.DataCenter
		if place == "" {
			place = "REJECTED"
		}
		fmt.Fprintf(w, "%.1fms\t%s\t%s\n", r.MaxLatencyMs, place, r.Reason)
	}
	w.Flush()
	hist, err := scenario.RejectionHistogram(seed)
	check(err)
	fmt.Println("\nrejection reasons under 4-minute mean interarrival overload:")
	keys := make([]string, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w = tw()
	for _, k := range keys {
		fmt.Fprintf(w, "  %s\t%d\n", k, hist[k])
	}
	w.Flush()
}

func expD7(seed int64) {
	header("D7", "pluggable MEC domain: edge apps through the generic engine")
	res, err := scenario.MECScenario(seed)
	check(err)
	g := res.Result.Gain
	w := tw()
	fmt.Fprintf(w, "offered\t%d\n", res.Result.Offered)
	fmt.Fprintf(w, "admitted / rejected\t%d / %d\n", g.Admitted, g.Rejected)
	fmt.Fprintf(w, "mec-capacity rejections\t%d\n", res.MECRejections)
	fmt.Fprintf(w, "edge apps placed\t%d\n", res.PlacedApps)
	fmt.Fprintf(w, "MEC pool utilization\t%.0f%%\n", res.MECUtilization*100)
	fmt.Fprintf(w, "net revenue\t%.2f EUR\n", res.Result.NetRevenueEUR)
	w.Flush()
	fmt.Println("\nrejection cause codes:")
	keys := make([]string, 0, len(g.RejectReasons))
	for k := range g.RejectReasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w = tw()
	for _, k := range keys {
		fmt.Fprintf(w, "  %s\t%d\n", k, g.RejectReasons[k])
	}
	w.Flush()
}
