package overbook

import (
	"testing"
	"time"
)

func TestNewSimulatedQuickstart(t *testing.T) {
	sys, err := NewSimulated(Options{Seed: 1, Overbook: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Orchestrator.Start()
	sl, err := sys.Orchestrator.Submit(Request{
		Tenant: "acme",
		SLA: SLA{ThroughputMbps: 30, MaxLatencyMs: 20,
			Duration: time.Hour, PriceEUR: 100, PenaltyEUR: 2,
			Class: ClassEHealth},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Sim.RunFor(time.Minute)
	if sl.State().String() != "active" {
		t.Fatalf("state %v (%s)", sl.State(), sl.Reason())
	}
	if g := sys.Orchestrator.Gain(); g.Admitted != 1 {
		t.Fatalf("gain %+v", g)
	}
}

func TestNewSimulatedCustomConfig(t *testing.T) {
	cfg := OrchestratorConfig{Overbook: true, Risk: 0.8, PLMNLimit: 10}
	sys, err := NewSimulated(Options{Seed: 2, Orchestrator: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Orchestrator.Config().Risk; got != 0.8 {
		t.Fatalf("risk %v", got)
	}
	if got := sys.Orchestrator.Config().PLMNLimit; got != 10 {
		t.Fatalf("plmn limit %v", got)
	}
}

func TestNewLiveRunsOnWallClock(t *testing.T) {
	sys, err := NewLive(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Sim != nil {
		t.Fatal("live system has a simulator")
	}
	sl, err := sys.Orchestrator.Submit(Request{
		Tenant: "live",
		SLA:    SLA{ThroughputMbps: 10, MaxLatencyMs: 50, Duration: time.Hour, PriceEUR: 10},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sl.State().String() != "installing" {
		t.Fatalf("state %v", sl.State())
	}
}

func TestTestbedOverride(t *testing.T) {
	sys, err := NewSimulated(Options{Seed: 1, Testbed: TestbedConfig{ENBs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Testbed.RAN.Names()); got != 4 {
		t.Fatalf("eNBs %d", got)
	}
}
