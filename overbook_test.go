package overbook

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewSimulatedQuickstart(t *testing.T) {
	sys, err := NewSimulated(Options{Seed: 1, Overbook: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Orchestrator.Start()
	sl, err := sys.Orchestrator.Submit(Request{
		Tenant: "acme",
		SLA: SLA{ThroughputMbps: 30, MaxLatencyMs: 20,
			Duration: time.Hour, PriceEUR: 100, PenaltyEUR: 2,
			Class: ClassEHealth},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Sim.RunFor(time.Minute)
	if sl.State().String() != "active" {
		t.Fatalf("state %v (%s)", sl.State(), sl.Reason())
	}
	if g := sys.Orchestrator.Gain(); g.Admitted != 1 {
		t.Fatalf("gain %+v", g)
	}
}

func TestNewSimulatedCustomConfig(t *testing.T) {
	cfg := OrchestratorConfig{Overbook: true, Risk: 0.8, PLMNLimit: 10}
	sys, err := NewSimulated(Options{Seed: 2, Orchestrator: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Orchestrator.Config().Risk; got != 0.8 {
		t.Fatalf("risk %v", got)
	}
	if got := sys.Orchestrator.Config().PLMNLimit; got != 10 {
		t.Fatalf("plmn limit %v", got)
	}
}

func TestNewLiveRunsOnWallClock(t *testing.T) {
	sys, err := NewLive(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Sim != nil {
		t.Fatal("live system has a simulator")
	}
	sl, err := sys.Orchestrator.Submit(Request{
		Tenant: "live",
		SLA:    SLA{ThroughputMbps: 10, MaxLatencyMs: 50, Duration: time.Hour, PriceEUR: 10},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sl.State().String() != "installing" {
		t.Fatalf("state %v", sl.State())
	}
}

// TestConcurrentFacadeAdmitDelete drives parallel Submit/Delete across
// tenants through the public facade on a wall-clock System — the facade's
// concurrency contract (run with -race). Independent tenants hash to
// different shards and are admitted in parallel; the final counters must
// account every request exactly once and release every resource.
func TestConcurrentFacadeAdmitDelete(t *testing.T) {
	cfg := OrchestratorConfig{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           512,
		Shards:              8,
	}
	sys, err := NewLive(Options{
		Orchestrator: &cfg,
		Testbed:      TestbedConfig{ENBs: 4, MaxPLMNs: 512, CoreHosts: 16, EdgeHosts: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	const tenants = 8
	const perTenant = 25
	var wg sync.WaitGroup
	for w := 0; w < tenants; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				sl, err := sys.Orchestrator.Submit(Request{
					Tenant: fmt.Sprintf("tenant-%d", w),
					SLA: SLA{ThroughputMbps: 2, MaxLatencyMs: 50,
						Duration: time.Hour, PriceEUR: 10, PenaltyEUR: 1},
				}, nil)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if sl.State().String() == "rejected" {
					continue
				}
				if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
					t.Errorf("delete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	g := sys.Orchestrator.Gain()
	if got := g.Admitted + g.Rejected; got != tenants*perTenant {
		t.Fatalf("admitted %d + rejected %d = %d, want %d", g.Admitted, g.Rejected, got, tenants*perTenant)
	}
	if u := sys.Testbed.Ctrl.RAN.Utilization(); u != 0 {
		t.Fatalf("RAN utilization %.4f after churn", u)
	}
	if u := sys.Testbed.Ctrl.Cloud.Utilization(); u != 0 {
		t.Fatalf("cloud utilization %.4f after churn", u)
	}
}

func TestTestbedOverride(t *testing.T) {
	sys, err := NewSimulated(Options{Seed: 1, Testbed: TestbedConfig{ENBs: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Testbed.RAN.Names()); got != 4 {
		t.Fatalf("eNBs %d", got)
	}
}
