package overbook

import (
	"testing"

	"repro/internal/core"
	"repro/internal/slice"
)

// TestFastRejectZeroAllocs is the allocation regression guard for the
// SubmitFast fast-reject path: after the cause pool is warm, a rejection
// storm must allocate nothing — causes come from and return to the pool,
// and the headroom/feasibility caches answer without building state.
func TestFastRejectZeroAllocs(t *testing.T) {
	sys := saturatedSystem(t)
	req := saturatedReq()
	// Warm the cause pool and the headroom cache.
	for i := 0; i < 16; i++ {
		cause := sys.Orchestrator.SubmitFast(req)
		if cause == nil {
			t.Fatal("saturated system accepted a fast-path request")
		}
		slice.RecycleRejection(cause)
	}
	allocs := testing.AllocsPerRun(200, func() {
		cause := sys.Orchestrator.SubmitFast(req)
		if cause == nil {
			t.Error("saturated system accepted a fast-path request")
			return
		}
		slice.RecycleRejection(cause)
	})
	if allocs != 0 {
		t.Fatalf("fast-reject path allocates: %.1f allocs/op, want 0", allocs)
	}
}

// TestAdmitAllocCeiling pins the allocation budget of the full pooled
// admit → install → delete cycle. The PR 6 baseline spent 435 allocs per
// cycle; the pooled engine runs it in ~107. The ceiling leaves slack for
// map-growth jitter but fails loudly if pooling regresses — revisit the
// number only alongside a deliberate hot-path change.
func TestAdmitAllocCeiling(t *testing.T) {
	const ceiling = 130
	cfg := core.Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           4096,
		HistoryLimit:        256,
		Shards:              16,
	}
	sys, err := NewLive(Options{
		Orchestrator: &cfg,
		Testbed: TestbedConfig{
			ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	req := benchReq(0)
	req.SLA.ThroughputMbps = 2
	// Warm every pool on the cycle.
	for i := 0; i < 8; i++ {
		sl, err := sys.Orchestrator.Submit(req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			t.Fatalf("admit guard request rejected: %s", sl.Reason())
		}
		if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		sl, err := sys.Orchestrator.Submit(req, nil)
		if err != nil {
			t.Error(err)
			return
		}
		if sl.State() == slice.StateRejected {
			t.Errorf("admit guard request rejected: %s", sl.Reason())
			return
		}
		if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
			t.Error(err)
		}
	})
	if allocs > ceiling {
		t.Fatalf("pooled admit cycle allocates %.1f allocs/op, ceiling %d", allocs, ceiling)
	}
}
