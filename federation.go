// The federation facade: the multi-cluster tier of the public API
// (DESIGN.md §11). A FederationSystem bundles a shared clock with a
// federation of member clusters — each a full orchestrator over its own
// testbed — plus the hierarchical capacity ledger and the latency- and
// capacity-aware placement engine that maps slice requests, or cross-cluster
// spans, onto owning members.
package overbook

import (
	"fmt"

	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/slice"
)

// Re-exported federation types, so typical users import only this package.
type (
	// Federation is the multi-cluster orchestration tier.
	Federation = federation.Federation
	// FederationConfig tunes the federation barrier and auditing.
	FederationConfig = federation.Config
	// ClusterConfig describes one member cluster.
	ClusterConfig = federation.ClusterConfig
	// ClusterInfo is the registry view of one member's books.
	ClusterInfo = federation.ClusterInfo
	// SpanRequest is one federated slice request.
	SpanRequest = federation.Request
	// SpanStatus is the outcome view of one federated submission.
	SpanStatus = federation.SpanStatus
	// PlacementExplain is the placement engine's dry-run trace.
	PlacementExplain = federation.PlacementExplain
	// FederationStats counts federation-tier placement outcomes.
	FederationStats = federation.Stats
)

// RejectClusterUnavailable extends the rejection taxonomy for the
// federation tier: no reachable member cluster can own the request.
const RejectClusterUnavailable = slice.RejectClusterUnavailable

// FederationOptions assembles a FederationSystem.
type FederationOptions struct {
	// Seed drives the per-member testbed randomness (derived per member
	// name, so outcomes are independent of cluster declaration order).
	Seed int64
	// Clusters are the member clusters to join (at least one).
	Clusters []ClusterConfig
	// Federation tunes the barrier period and the conservation auditor;
	// its Seed field is overridden by Seed above.
	Federation FederationConfig
}

// FederationSystem is an assembled multi-cluster deployment.
type FederationSystem struct {
	// Sim is the virtual clock (nil for live systems).
	Sim *sim.Simulator
	// Clock is the scheduler shared by the federation and every member.
	Clock sim.Scheduler
	// Federation is the multi-cluster tier under control.
	Federation *Federation
}

func assembleFederation(clock sim.Scheduler, opts FederationOptions) (*Federation, error) {
	cfg := opts.Federation
	cfg.Seed = opts.Seed
	fed := federation.New(cfg, clock)
	for _, cc := range opts.Clusters {
		if _, err := fed.Join(cc); err != nil {
			return nil, err
		}
	}
	return fed, nil
}

// NewSimulatedFederation builds a deterministic simulated multi-cluster
// deployment: experiments run in virtual time via sys.Sim.RunFor, and the
// same seed yields bit-identical per-cluster outcomes under any cluster
// declaration order.
func NewSimulatedFederation(opts FederationOptions) (*FederationSystem, error) {
	s := sim.NewSimulator(opts.Seed)
	fed, err := assembleFederation(s, opts)
	if err != nil {
		return nil, err
	}
	return &FederationSystem{Sim: s, Clock: s, Federation: fed}, nil
}

// NewLiveFederation builds a wall-clock multi-cluster deployment for the
// daemon (cmd/orchestrator -federation): the same federation code runs on
// real timers and demand arrives via the /api/v2/federation/ REST surface.
func NewLiveFederation(opts FederationOptions) (*FederationSystem, error) {
	clock := sim.NewRealtimeClock()
	fed, err := assembleFederation(clock, opts)
	if err != nil {
		return nil, err
	}
	return &FederationSystem{Clock: clock, Federation: fed}, nil
}

// DefaultFederationClusters returns n demo member clusters ("cluster-1" ...)
// at staggered federation latencies, each with the standard overbooking
// config — the chassis cmd/orchestrator -federation and the benchmarks use.
func DefaultFederationClusters(n int) []ClusterConfig {
	out := make([]ClusterConfig, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ClusterConfig{
			// Two-digit names keep registry sort == numeric order for the
			// fleet sizes the demo uses.
			Name:      fmt.Sprintf("cluster-%02d", i+1),
			Location:  "zone-" + string(rune('a'+i%26)),
			LatencyMs: float64(1 + i),
			Orchestrator: OrchestratorConfig{
				Overbook:  true,
				Risk:      0.9,
				PLMNLimit: 64,
			},
			Testbed: TestbedConfig{MaxPLMNs: 64, RedundantTransport: true},
		})
	}
	return out
}
