// Benchmarks regenerating the performance side of every experiment in
// DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark maps to one figure/claim: F1 BenchmarkOrchestrationCycle,
// F2 BenchmarkSliceInstallation, F3 BenchmarkParallelAdmission (the
// sharded-engine scaling claim), F4 BenchmarkWatchFanout (event publication
// stays off the admission hot path), D1 BenchmarkAdmissionControl (+ the
// knapsack solver), D2 BenchmarkGainTracking, D3 BenchmarkForecasters,
// D4 BenchmarkOverbookingSweep, D5 BenchmarkDomainUtilization,
// D6 BenchmarkEmbedding.
package overbook

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/intent"
	"repro/internal/monitor"
	"repro/internal/scenario"
	"repro/internal/slice"
	"repro/internal/testbed"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// benchReq builds a small admissible request.
func benchReq(i int) slice.Request {
	return slice.Request{
		Tenant: fmt.Sprintf("bench-%d", i),
		SLA: slice.SLA{
			ThroughputMbps: 20,
			MaxLatencyMs:   50,
			Duration:       time.Hour,
			PriceEUR:       50,
			PenaltyEUR:     1,
		},
	}
}

// BenchmarkOrchestrationCycle (F1) measures one pass of the Fig.-1 closed
// loop — collect, monitor, forecast, optimize, reconfigure — on systems
// loaded with an increasing number of active slices.
func BenchmarkOrchestrationCycle(b *testing.B) {
	for _, n := range []int{2, 6, 12, 24} {
		b.Run(fmt.Sprintf("slices=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			r, err := scenario.LoadedRunner(1, n)
			if err != nil {
				b.Fatal(err)
			}
			r.Orch.Stop() // drive epochs manually
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Orch.RunEpoch()
			}
		})
	}
}

// BenchmarkSliceInstallation (F2) measures the full multi-domain install +
// teardown of a slice: admission, PLMN, PRBs, paths, Heat stack, vEPC.
func BenchmarkSliceInstallation(b *testing.B) {
	b.ReportAllocs()
	sys, err := NewSimulated(Options{Seed: 1, Overbook: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sl, err := sys.Orchestrator.Submit(benchReq(i), nil)
		if err != nil {
			b.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			b.Fatalf("bench request rejected: %s", sl.Reason())
		}
		sys.Sim.RunFor(15 * time.Second) // install stages
		if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstallTransaction (F2) measures the generic domain-transaction
// engine on the same admit → multi-domain install → teardown cycle that
// BenchmarkSliceInstallation recorded on the seed's hand-rolled install, so
// the abstraction's overhead stays visible in the F2 trajectory. domains=3
// is the direct apples-to-apples comparison; domains=4 adds the pluggable
// MEC domain and prices one extra concurrent-group member.
func BenchmarkInstallTransaction(b *testing.B) {
	for _, mecHosts := range []int{0, 4} {
		name := "domains=3"
		if mecHosts > 0 {
			name = "domains=4"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			sys, err := NewSimulated(Options{
				Seed:     1,
				Overbook: true,
				Testbed:  TestbedConfig{MECHosts: mecHosts, MECHostCPUs: 64},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sl, err := sys.Orchestrator.Submit(benchReq(i), nil)
				if err != nil {
					b.Fatal(err)
				}
				if sl.State() == slice.StateRejected {
					b.Fatalf("bench request rejected: %s", sl.Reason())
				}
				sys.Sim.RunFor(15 * time.Second) // install stages
				if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelAdmission (F3) is the admit-heavy concurrent-admission
// benchmark of the sharded engine: every goroutine submits and immediately
// deletes small slices for its own tenant on a wall-clock System, so the
// full admit → multi-domain install → teardown cycle runs in parallel. The
// shards=1 case serializes the whole cycle (the pre-sharding engine); the
// 4- and 16-shard cases let independent tenants proceed concurrently, and
// ops/sec should scale with cores (DESIGN.md §4, claim F3: ≥2× at 16
// shards vs 1 on a multi-core runner). The reject-heavy counterpart is
// BenchmarkParallelAdmissionReject (the name here is kept stable so the
// BENCH_*.json trajectory stays comparable across PRs).
func BenchmarkParallelAdmission(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.Config{
				Overbook:            true,
				Risk:                0.9,
				AdmissionLoadFactor: 0.5,
				PLMNLimit:           4096,
				HistoryLimit:        256,
				Shards:              shards,
			}
			sys, err := NewLive(Options{
				Orchestrator: &cfg,
				Testbed: TestbedConfig{
					ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tenant := fmt.Sprintf("bench-tenant-%d", seq.Add(1))
				for pb.Next() {
					sl, err := sys.Orchestrator.Submit(slice.Request{
						Tenant: tenant,
						SLA: slice.SLA{
							ThroughputMbps: 2,
							MaxLatencyMs:   50,
							Duration:       time.Hour,
							PriceEUR:       10,
							PenaltyEUR:     1,
						},
					}, nil)
					// b.Fatal must not be called from RunParallel workers;
					// b.Error + return stops this worker and fails the run.
					if err != nil {
						b.Error(err)
						return
					}
					if sl.State() == slice.StateRejected {
						b.Errorf("bench request rejected: %s", sl.Reason())
						return
					}
					if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// saturatedSystem builds a peak-provisioned live system whose capacity
// ledger is filled to the brim, so every further request is a certain
// rejection — the fixture for the reject-heavy benchmarks and the
// zero-allocation fast-reject guard.
func saturatedSystem(tb testing.TB) *System {
	tb.Helper()
	cfg := core.Config{
		PLMNLimit:    4096,
		HistoryLimit: 256,
		Shards:       16,
	}
	sys, err := NewLive(Options{
		Orchestrator: &cfg,
		Testbed: TestbedConfig{
			ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	// Fill the ledger: keep admitting 100-Mbps slices until one bounces.
	for i := 0; ; i++ {
		if i > 10000 {
			tb.Fatal("saturation never reached")
		}
		req := benchReq(i)
		req.SLA.ThroughputMbps = 100
		sl, err := sys.Orchestrator.Submit(req, nil)
		if err != nil {
			tb.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			break
		}
	}
	return sys
}

// saturatedReq is a request a saturated system must certainly reject: its
// contract alone exceeds the whole testbed's headroom.
func saturatedReq() slice.Request {
	req := benchReq(0)
	req.SLA.ThroughputMbps = 1 << 20
	return req
}

// BenchmarkParallelAdmissionReject (F3) is the reject-heavy counterpart of
// BenchmarkParallelAdmission: an overload storm against a saturated system,
// answered by the SubmitFast zero-allocation fast-reject path. Steady state
// must report 0 allocs/op — every rejection cause comes from and returns to
// the pool, and the headroom/feasibility caches answer without touching the
// WAL, the event bus or the slice registry.
func BenchmarkParallelAdmissionReject(b *testing.B) {
	sys := saturatedSystem(b)
	req := saturatedReq()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			cause := sys.Orchestrator.SubmitFast(req)
			if cause == nil {
				b.Error("saturated system accepted a fast-path request")
				return
			}
			slice.RecycleRejection(cause)
		}
	})
}

// BenchmarkWatchFanout (F4) measures concurrent admission throughput while
// 1/64/1024 subscribers consume the lifecycle event stream — the proof
// that event publication stays off the sharded hot path: ops/sec at any
// subscriber count must track BenchmarkParallelAdmission/shards=16 (each
// admit+delete publishes three events; subscribers drain concurrently and
// the slowest merely resyncs, never stalling Submit).
func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.Config{
				Overbook:            true,
				Risk:                0.9,
				AdmissionLoadFactor: 0.5,
				PLMNLimit:           4096,
				HistoryLimit:        256,
				Shards:              16,
			}
			sys, err := NewLive(Options{
				Orchestrator: &cfg,
				Testbed: TestbedConfig{
					ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			var consumed atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				ch := sys.Orchestrator.Watch(ctx, WatchOptions{Buffer: 256})
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range ch {
						consumed.Add(1)
					}
				}()
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				tenant := fmt.Sprintf("bench-tenant-%d", seq.Add(1))
				for pb.Next() {
					sl, err := sys.Orchestrator.Submit(slice.Request{
						Tenant: tenant,
						SLA: slice.SLA{
							ThroughputMbps: 2,
							MaxLatencyMs:   50,
							Duration:       time.Hour,
							PriceEUR:       10,
							PenaltyEUR:     1,
						},
					}, nil)
					if err != nil {
						b.Error(err)
						return
					}
					if sl.State() == slice.StateRejected {
						b.Errorf("bench request rejected: %s", sl.Reason())
						return
					}
					if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			cancel()
			wg.Wait()
			if b.N > 0 {
				b.ReportMetric(float64(consumed.Load())/float64(b.N), "events/op")
			}
		})
	}
}

// epochLoadedSystem builds a simulated system carrying n active slices with
// live demand processes — the fixture for the epoch-engine benchmarks. The
// testbed is scaled (aggregated carriers, lifted MOCN list, larger core DC,
// fat transport links) so the radio grid, not the model limits, is what
// binds; every slice is genuinely installed through the multi-domain engine.
func epochLoadedSystem(b *testing.B, n, shards int) *System {
	b.Helper()
	cfg := core.Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           n + 8,
		HistoryLimit:        64,
		Shards:              shards,
	}
	sys, err := NewSimulated(Options{
		Seed:         1,
		Orchestrator: &cfg,
		Testbed: TestbedConfig{
			ENBs:          2,
			ENBCarriers:   n/50 + 2,
			MaxPLMNs:      n + 8,
			CoreHosts:     n/16 + 8,
			CoreHostVCPUs: 64,
			EdgeHosts:     4,
			MmWaveMbps:    1 << 20,
			MicroWaveMbps: 1 << 20,
			WiredMbps:     1 << 22,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := sys.Sim.Rand()
	for i := 0; i < n; i++ {
		sl, err := sys.Orchestrator.Submit(slice.Request{
			Tenant: fmt.Sprintf("epoch-%d", i),
			SLA: slice.SLA{
				ThroughputMbps: 2,
				MaxLatencyMs:   50,
				Duration:       1000 * time.Hour,
				PriceEUR:       10,
				PenaltyEUR:     1,
			},
		}, traffic.NewConstant(1, 0.15, rng))
		if err != nil {
			b.Fatal(err)
		}
		if sl.State() == slice.StateRejected {
			b.Fatalf("epoch bench slice %d rejected: %s", i, sl.Reason())
		}
	}
	sys.Sim.RunFor(15 * time.Second) // install stages + vEPC boot
	return sys
}

// BenchmarkEpoch measures one pass of the phase-structured control epoch at
// increasing registry sizes and shard counts. shards=1 is the serial path;
// shards=16 runs the per-shard monitor/forecast/provision phase in parallel
// workers. The DESIGN.md §7 scaling claim: slices=8192/shards=16 at least
// 2x faster than the pre-refactor stop-the-world epoch at the same size.
func BenchmarkEpoch(b *testing.B) {
	for _, n := range []int{64, 1024, 8192} {
		for _, shards := range []int{1, 16} {
			b.Run(fmt.Sprintf("slices=%d/shards=%d", n, shards), func(b *testing.B) {
				b.ReportAllocs()
				sys := epochLoadedSystem(b, n, shards)
				if got := sys.Orchestrator.ActiveCount(); got != n {
					b.Fatalf("loaded %d active slices, want %d", got, n)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.Orchestrator.RunEpoch()
				}
			})
		}
	}
}

// BenchmarkGainUnderLoad measures the dashboard's Gain() read while the
// sharded engine is busy admitting and tearing down slices — the read plane
// must not stall admission (and vice versa).
func BenchmarkGainUnderLoad(b *testing.B) {
	b.ReportAllocs()
	cfg := core.Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           4096,
		HistoryLimit:        256,
		Shards:              16,
	}
	sys, err := NewLive(Options{
		Orchestrator: &cfg,
		Testbed: TestbedConfig{
			ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for w := 0; w < 4; w++ {
		churn.Add(1)
		go func(w int) {
			defer churn.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sl, err := sys.Orchestrator.Submit(slice.Request{
					Tenant: fmt.Sprintf("churn-%d", w),
					SLA: slice.SLA{
						ThroughputMbps: 2,
						MaxLatencyMs:   50,
						Duration:       time.Hour,
						PriceEUR:       10,
						PenaltyEUR:     1,
					},
				}, nil)
				if err != nil {
					b.Error(err)
					return
				}
				if sl.State() != slice.StateRejected {
					if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(w)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := sys.Orchestrator.Gain()
			if g.CapacityMbps <= 0 {
				b.Error("bad report")
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	churn.Wait()
}

// BenchmarkAdmissionControl (D1) measures the admission decision itself on
// a loaded system, including the multi-domain feasibility checks.
func BenchmarkAdmissionControl(b *testing.B) {
	b.ReportAllocs()
	r, err := scenario.LoadedRunner(1, 12)
	if err != nil {
		b.Fatal(err)
	}
	// An unmeetable latency forces the full check path then rejection, so
	// state does not grow across iterations.
	req := benchReq(0)
	req.SLA.MaxLatencyMs = 0.01
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Orch.Submit(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmissionKnapsack (D1) measures the offline revenue-maximization
// solver at increasing batch sizes.
func BenchmarkAdmissionKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 32, 128} {
		reqs := make([]core.KnapsackRequest, n)
		for i := range reqs {
			mbps := 5 + rng.Float64()*55
			reqs[i] = core.KnapsackRequest{
				Req: slice.Request{
					Tenant: "k",
					SLA: slice.SLA{
						ThroughputMbps: mbps, MaxLatencyMs: 50,
						Duration: time.Hour, PriceEUR: rng.Float64() * 200,
					},
				},
				LoadMbps: mbps,
			}
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MaxRevenueSubset(reqs, 500)
			}
		})
	}
}

// BenchmarkGainTracking (D2) measures producing the gains-vs-penalties
// dashboard report on a loaded system.
func BenchmarkGainTracking(b *testing.B) {
	b.ReportAllocs()
	r, err := scenario.LoadedRunner(1, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := r.Orch.Gain()
		if g.CapacityMbps <= 0 {
			b.Fatal("bad report")
		}
	}
}

// BenchmarkForecasters (D3) measures one observe+forecast step of each
// forecaster in the zoo.
func BenchmarkForecasters(b *testing.B) {
	mk := map[string]func() forecast.Forecaster{
		"naive":        func() forecast.Forecaster { return forecast.NewNaive() },
		"ma8":          func() forecast.Forecaster { return forecast.NewMovingAverage(8) },
		"ewma":         func() forecast.Forecaster { return forecast.NewEWMA(0.3) },
		"holt":         func() forecast.Forecaster { return forecast.NewHolt(0.4, 0.1) },
		"holt-winters": func() forecast.Forecaster { return forecast.NewHoltWinters(0.3, 0.05, 0.3, 96) },
	}
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 4096)
	for i := range series {
		series[i] = 100 + 40*rng.Float64()
	}
	for name, ctor := range mk {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f := ctor()
			for i := 0; i < b.N; i++ {
				f.Observe(series[i%len(series)])
				_ = f.Forecast()
			}
		})
	}
}

// BenchmarkOverbookingSweep (D4) measures a complete (short) scenario run
// per risk level — the cost of regenerating one point of the trade-off
// curve.
func BenchmarkOverbookingSweep(b *testing.B) {
	for _, risk := range []float64{1.0, 0.95, 0.7} {
		b.Run(fmt.Sprintf("risk=%.2f", risk), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scenario.MustRun(scenario.Options{
					Seed:             1,
					Duration:         2 * time.Hour,
					MeanInterarrival: 15 * time.Minute,
					Orchestrator: core.Config{
						Overbook: risk < 0.9995, Risk: risk, PLMNLimit: 32,
					},
				})
			}
		})
	}
}

// BenchmarkDomainUtilization (D5) measures one full telemetry push across
// the three domain controllers.
func BenchmarkDomainUtilization(b *testing.B) {
	b.ReportAllocs()
	r, err := scenario.LoadedRunner(1, 12)
	if err != nil {
		b.Fatal(err)
	}
	store := monitor.NewStore(1024)
	now := r.Sim.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.TB.Ctrl.PushTelemetry(store, now)
	}
}

// BenchmarkEmbedding (D6) measures the path-computation core of the
// multi-domain embedding: delay-constrained shortest path and the
// k-shortest alternative search on the testbed topology.
func BenchmarkEmbedding(b *testing.B) {
	tb, err := testbed.New(testbed.Config{ENBs: 8}, nil)
	if err != nil {
		b.Fatal(err)
	}
	req := transport.PathRequest{From: testbed.ENBName(0), To: testbed.CoreDC, MinMbps: 20, MaxDelayMs: 50}
	b.Run("shortest-path", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tb.Transport.ShortestPath(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("k-shortest-3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := tb.Transport.KShortestPaths(req, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScheduler measures one RAN scheduling epoch (the per-epoch inner
// loop of the monitoring stage) with shared-PRB multiplexing on and off.
func BenchmarkScheduler(b *testing.B) {
	r, err := scenario.LoadedRunner(1, 12)
	if err != nil {
		b.Fatal(err)
	}
	demand := map[slice.PLMN]float64{}
	for _, sn := range r.Orch.List() {
		if sn.State == "active" {
			demand[sn.Allocation.PLMN] = sn.SLA.ThroughputMbps * 0.5
		}
	}
	for _, share := range []bool{false, true} {
		b.Run(fmt.Sprintf("share=%v", share), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.TB.Ctrl.RAN.ScheduleEpoch(demand, share)
			}
		})
	}
}

// BenchmarkDemandSampling measures the traffic generators feeding the
// monitoring pipeline.
func BenchmarkDemandSampling(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	at := time.Date(2018, 8, 20, 12, 0, 0, 0, time.UTC)
	gens := map[string]traffic.Demand{
		"constant": traffic.NewConstant(20, 1, rng),
		"diurnal":  traffic.NewDiurnal(50, 20, 20, 3, rng),
		"bursty":   traffic.NewBursty(5, 50, 0.1, 0.3, 1, rng),
	}
	for name, g := range gens {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Sample(at)
			}
		})
	}
}

// durableSystem builds a wall-clock System persisting every mutation to a
// fresh file-backed WAL — the fixture for the durable-path benchmarks.
// perOp selects the PR 6 baseline (every operation fsyncs its own records
// under the persistence lock) versus the group-commit pipeline (DESIGN.md
// §12, the default).
func durableSystem(b *testing.B, shards int, perOp bool) *System {
	b.Helper()
	cfg := core.Config{
		Overbook:            true,
		Risk:                0.9,
		AdmissionLoadFactor: 0.5,
		PLMNLimit:           4096,
		HistoryLimit:        256,
		Shards:              shards,
		CommitPerOp:         perOp,
	}
	sys, err := NewLiveDurable(Options{
		Orchestrator: &cfg,
		Testbed: TestbedConfig{
			ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
		},
	}, b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := sys.CloseWAL(); err != nil {
			b.Error(err)
		}
	})
	return sys
}

// BenchmarkDurableAdmission measures the durable admit→teardown cycle — the
// F3 hot path with every operation's records fsynced before Submit/Delete
// return — under group commit versus the per-operation-fsync baseline. The
// writers axis is the group-commit story: at writers=1 the pipeline
// degenerates to a synchronous group of one (price of the protocol ≈ 0);
// at writers=64 concurrent committers share fsyncs, and the reported
// fsyncs/op metric (fsyncs per durable commit, from the orchestrator's
// persistence counters) collapses toward 1/groupsize while the per-op
// baseline stays pinned at 1. DESIGN.md §12 claim: shards=16/writers=64
// group mode ≥5× the per-op baseline ops/sec with fsyncs/op < 0.1.
func BenchmarkDurableAdmission(b *testing.B) {
	for _, mode := range []struct {
		name  string
		perOp bool
	}{{"group", false}, {"perop", true}} {
		for _, shards := range []int{1, 16} {
			for _, writers := range []int{1, 64} {
				b.Run(fmt.Sprintf("mode=%s/shards=%d/writers=%d", mode.name, shards, writers), func(b *testing.B) {
					b.ReportAllocs()
					sys := durableSystem(b, shards, mode.perOp)
					before := sys.Orchestrator.PersistStatus()
					var next atomic.Int64
					var wg sync.WaitGroup
					b.ResetTimer()
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							tenant := fmt.Sprintf("durable-%d", w)
							for next.Add(1) <= int64(b.N) {
								sl, err := sys.Orchestrator.Submit(slice.Request{
									Tenant: tenant,
									SLA: slice.SLA{
										ThroughputMbps: 2,
										MaxLatencyMs:   50,
										Duration:       time.Hour,
										PriceEUR:       10,
										PenaltyEUR:     1,
									},
								}, nil)
								if err != nil {
									b.Error(err)
									return
								}
								if sl.State() == slice.StateRejected {
									b.Errorf("bench request rejected: %s", sl.Reason())
									return
								}
								if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
									b.Error(err)
									return
								}
							}
						}(w)
					}
					wg.Wait()
					b.StopTimer()
					after := sys.Orchestrator.PersistStatus()
					if ops := after.CommitOps - before.CommitOps; ops > 0 {
						b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(ops), "fsyncs/op")
					}
				})
			}
		}
	}
}

// BenchmarkDurableBatch measures durable batch admission: SubmitBatch makes
// the whole batch durable with a single commit at the batch edge, so the
// per-item fsync share falls with batch size even from a single driver —
// the static counterpart of the dynamic grouping BenchmarkDurableAdmission
// measures across concurrent submitters.
func BenchmarkDurableBatch(b *testing.B) {
	for _, size := range []int{8, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			sys := durableSystem(b, 16, false)
			before := sys.Orchestrator.PersistStatus()
			items := make([]core.BatchItem, size)
			b.ResetTimer()
			var ops int
			for i := 0; i < b.N; i++ {
				for j := range items {
					items[j] = core.BatchItem{Request: slice.Request{
						Tenant: fmt.Sprintf("batch-%d", j),
						SLA: slice.SLA{
							ThroughputMbps: 2,
							MaxLatencyMs:   50,
							Duration:       time.Hour,
							PriceEUR:       10,
							PenaltyEUR:     1,
						},
					}}
				}
				sls, err := sys.Orchestrator.SubmitBatch(items, core.BatchFCFS)
				if err != nil {
					b.Fatal(err)
				}
				ops += len(sls)
				for _, sl := range sls {
					if sl.State() == slice.StateRejected {
						b.Fatalf("batch item rejected: %s", sl.Reason())
					}
					if err := sys.Orchestrator.Delete(sl.ID()); err != nil {
						b.Fatal(err)
					}
					ops++
				}
			}
			b.StopTimer()
			after := sys.Orchestrator.PersistStatus()
			if ops > 0 {
				b.ReportMetric(float64(after.Fsyncs-before.Fsyncs)/float64(ops), "fsyncs/item")
			}
		})
	}
}

// BenchmarkFederatedAdmission (PR 8) measures the federation-tier admission
// hot path — deterministic placement over the hierarchical capacity ledger
// plus the two-phase span install across member clusters — at growing
// membership. The request is sized to 60% of the federated headroom, so at
// clusters=1 it is a single-leg admission and at 2 and 4 it forces a
// cross-cluster span (the reverse-order abort path is exercised by the
// paired Delete, which keeps the books level across iterations).
func BenchmarkFederatedAdmission(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clusters=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			sys, err := NewSimulatedFederation(FederationOptions{
				Seed:     1,
				Clusters: DefaultFederationClusters(n),
			})
			if err != nil {
				b.Fatal(err)
			}
			fed := sys.Federation
			var total float64
			for _, in := range fed.ClusterInfos() {
				total += in.HeadroomMbps
			}
			req := SpanRequest{
				Tenant: "bench",
				SLA: SLA{
					ThroughputMbps: 0.6 * total,
					MaxLatencyMs:   50,
					Duration:       time.Hour,
					PriceEUR:       100,
					PenaltyEUR:     1,
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := fed.Submit(req)
				if err != nil {
					b.Fatal(err)
				}
				if st.State != "installed" {
					b.Fatalf("span rejected: %+v", st)
				}
				if err := fed.Delete(st.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTemplateInstantiation (PR 10) measures the intent plane's bulk
// fleet-instantiation path — one published template expanded tenant-major
// over tenants×regions cells, admitted through SubmitBatch, provision-
// capped, and recorded as a fleet. The paired per-member Delete keeps the
// capacity ledger level across iterations, so ns/op is the steady-state
// cost of one whole fleet (instantiate + caps + teardown), not of a single
// slice.
func BenchmarkTemplateInstantiation(b *testing.B) {
	for _, dims := range []struct{ tenants, regions int }{{4, 1}, {4, 2}, {8, 2}} {
		b.Run(fmt.Sprintf("cells=%d", dims.tenants*dims.regions), func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.Config{
				Overbook:            true,
				Risk:                0.9,
				AdmissionLoadFactor: 0.5,
				PLMNLimit:           4096,
				HistoryLimit:        256,
				Shards:              16,
			}
			sys, err := NewLive(Options{
				Orchestrator: &cfg,
				Testbed: TestbedConfig{
					ENBs: 4, MaxPLMNs: 4096, CoreHosts: 32, EdgeHosts: 16,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			m := NewIntentManager(sys, IntentConfig{})
			tpl := intent.Template{
				Name:           "bench",
				ThroughputMbps: 2,
				MaxLatencyMs:   50,
				Duration:       time.Hour,
				PriceEUR:       10,
				PenaltyEUR:     1,
			}
			if _, err := m.Store().CreateDraft(tpl, time.Unix(0, 0)); err != nil {
				b.Fatal(err)
			}
			if _, err := m.Store().Publish("bench", 1, time.Unix(0, 0)); err != nil {
				b.Fatal(err)
			}
			tenants := make([]string, dims.tenants)
			for i := range tenants {
				tenants[i] = fmt.Sprintf("bench-tenant-%d", i)
			}
			regions := []intent.Region{intent.RegionCore, intent.RegionEdge}[:dims.regions]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := m.Instantiate("bench", 1, tenants, regions, core.BatchFCFS, nil)
				if err != nil {
					b.Fatal(err)
				}
				if f.Rejected != 0 {
					b.Fatalf("fleet rejected %d cells", f.Rejected)
				}
				for _, mem := range f.Members {
					if err := sys.Orchestrator.Delete(mem.Slice); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
